//! Shard-and-merge campaign execution with world-reuse caching.
//!
//! A plan is partitioned into K contiguous shards; each shard runs
//! independently through a [`ShardBackend`] and returns a **serialized**
//! aggregate artifact; the artifacts are merged back in cell-index order
//! into one [`CampaignReport`]. The serialization boundary is deliberate:
//! a backend that ships shards to worker processes (or machines) and
//! returns their stdout is a drop-in — the merge only ever sees artifact
//! text.
//!
//! # The merge-determinism invariant
//!
//! For a fixed plan, the merged report is **bit-identical for every shard
//! count K and every `RAYON_NUM_THREADS`**: each cell's result is a pure
//! function of its scenario (the engine's determinism invariants), shards
//! partition the plan, and the merge places results by cell index — never
//! by completion order. Floats cross the artifact boundary as
//! `f64::to_bits` hex, so serialization cannot round. The
//! `assert_campaign_equivalent` axis in [`crate::equivalence`] pins
//! sharded/merged execution against straight per-cell runs.
//!
//! # The plan seam
//!
//! Everything here is generic over [`Plan`]: an ordered cell list with
//! stable ids, a cell runner, and a per-cell [`CellRecord`] that
//! serializes to one artifact line. [`CampaignPlan`] (scenario sweeps)
//! and [`crate::fleet::FleetPlan`] (fleet routing sweeps) both implement
//! it, so fleet manifests shard, supervise, resume and merge through the
//! **same** backends — partitioning, artifact validation, merging and the
//! equivalence axis have zero plan-kind-specific code paths.
//!
//! # World reuse
//!
//! [`InProcessBackend`] asks the plan to run each shard's cell range with
//! `world_reuse` on; [`CampaignPlan`] keys each cell by
//! [`Scenario::world_inputs_key`](crate::scenario::Scenario::world_inputs_key) and builds each distinct world once per
//! shard, replaying every matching cell over it via the aggregates-only
//! observation fast path — exactly the by-hand pattern the bench crate
//! established, now automatic. On a policy-only campaign this turns
//! O(cells) world builds into O(distinct seeds) per shard. (The fleet
//! plan does the same with whole fleet worlds, keyed per site.)

use std::collections::HashMap;
use std::fmt::Write as _;

use greener_simkit::rng::fnv1a;
use greener_simkit::sweep;
use greener_simkit::units::Energy;

use crate::driver::{JobStats, SimDriver, World};
use crate::equivalence::Fingerprint;
use crate::probe::{Observe, RunAggregates};

use super::plan::{CampaignCell, CampaignPlan};

/// An error while parsing or merging shard artifacts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignError {
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "campaign: {}", self.msg)
    }
}

impl std::error::Error for CampaignError {}

fn cerr<T>(msg: impl Into<String>) -> Result<T, CampaignError> {
    Err(CampaignError { msg: msg.into() })
}

/// Why an artifact was rejected, split by layer: [`ArtifactIssue::Parse`]
/// means the text is not structurally a versioned artifact at all,
/// [`ArtifactIssue::Validation`] means it is well-formed but wrong —
/// stale (plan fingerprint mismatch), corrupt/truncated (checksum
/// mismatch), or covering the wrong cells. Supervisors map the two onto
/// [`ShardError::Parse`] / [`ShardError::Validation`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArtifactIssue {
    /// The text does not have the v1 artifact shape (bad header, missing
    /// checksum trailer, unparseable cell line).
    Parse(String),
    /// Structurally sound but semantically rejected (stale, corrupt,
    /// truncated, mis-ranged, or mismatching the plan).
    Validation(String),
}

impl ArtifactIssue {
    /// The human-readable rejection reason.
    pub fn msg(&self) -> &str {
        match self {
            ArtifactIssue::Parse(m) | ArtifactIssue::Validation(m) => m,
        }
    }
}

impl std::fmt::Display for ArtifactIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactIssue::Parse(m) => write!(f, "artifact parse: {m}"),
            ArtifactIssue::Validation(m) => write!(f, "artifact validation: {m}"),
        }
    }
}

impl std::error::Error for ArtifactIssue {}

/// Why a shard failed to produce an accepted artifact. This is the error
/// surface of the fallible backend seam
/// ([`ShardBackend::try_run_shard`]): process-per-shard supervisors
/// classify every failure mode so retry policy and run reports can tell
/// a hung worker from a corrupt artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// The worker process could not be spawned at all.
    Spawn {
        /// Shard ordinal.
        shard: usize,
        /// The OS error.
        msg: String,
    },
    /// The worker exited with a failure status.
    Exit {
        /// Shard ordinal.
        shard: usize,
        /// Exit code, if the process was not signal-killed.
        code: Option<i32>,
    },
    /// The worker outlived the per-attempt wall-clock budget and was
    /// killed.
    Timeout {
        /// Shard ordinal.
        shard: usize,
        /// The budget that expired, in milliseconds.
        timeout_ms: u64,
    },
    /// The artifact text was structurally malformed.
    Parse {
        /// Shard ordinal.
        shard: usize,
        /// The parse failure.
        msg: String,
    },
    /// The artifact parsed but failed validation (stale plan fingerprint,
    /// checksum mismatch, wrong shard range, coverage holes).
    Validation {
        /// Shard ordinal.
        shard: usize,
        /// The validation failure.
        msg: String,
    },
}

impl ShardError {
    /// The shard this error belongs to.
    pub fn shard(&self) -> usize {
        match self {
            ShardError::Spawn { shard, .. }
            | ShardError::Exit { shard, .. }
            | ShardError::Timeout { shard, .. }
            | ShardError::Parse { shard, .. }
            | ShardError::Validation { shard, .. } => *shard,
        }
    }

    /// Wrap an [`ArtifactIssue`] for `shard`.
    pub fn from_issue(shard: usize, issue: ArtifactIssue) -> ShardError {
        match issue {
            ArtifactIssue::Parse(msg) => ShardError::Parse { shard, msg },
            ArtifactIssue::Validation(msg) => ShardError::Validation { shard, msg },
        }
    }
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Spawn { shard, msg } => write!(f, "shard {shard}: spawn failed: {msg}"),
            ShardError::Exit { shard, code } => match code {
                Some(c) => write!(f, "shard {shard}: worker exited with status {c}"),
                None => write!(f, "shard {shard}: worker killed by signal"),
            },
            ShardError::Timeout { shard, timeout_ms } => {
                write!(f, "shard {shard}: worker timed out after {timeout_ms} ms")
            }
            ShardError::Parse { shard, msg } => write!(f, "shard {shard}: {msg}"),
            ShardError::Validation { shard, msg } => write!(f, "shard {shard}: {msg}"),
        }
    }
}

impl std::error::Error for ShardError {}

/// One shard of a plan: the contiguous cell range `start..end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// Shard ordinal, `0..of`.
    pub shard: usize,
    /// Total shard count.
    pub of: usize,
    /// First cell index (inclusive).
    pub start: usize,
    /// One past the last cell index.
    pub end: usize,
}

/// Partition `n_cells` into `k` contiguous, balanced shards (sizes differ
/// by at most one; earlier shards take the remainder). Shards with an
/// empty range are kept so `partition(n, k).len() == k` always holds —
/// they produce empty artifacts and merge away.
pub fn partition(n_cells: usize, k: usize) -> Vec<ShardSpec> {
    assert!(k > 0, "shard count must be positive");
    let base = n_cells / k;
    let extra = n_cells % k;
    let mut specs = Vec::with_capacity(k);
    let mut start = 0;
    for shard in 0..k {
        let len = base + usize::from(shard < extra);
        specs.push(ShardSpec {
            shard,
            of: k,
            start,
            end: start + len,
        });
        start += len;
    }
    specs
}

/// The per-cell result record a plan serializes into shard artifacts: one
/// whitespace-separated line per cell (first token a stable tag, floats
/// as `to_bits` hex), with `parse_line ∘ to_line` the identity.
/// [`CellResult`] (campaign cells) and
/// [`crate::fleet::FleetCellResult`] (fleet cells) implement it; the
/// artifact composer, validator, merge and report are generic over it.
pub trait CellRecord: Clone + Send + PartialEq + std::fmt::Debug {
    /// The cell's plan index (merge position).
    fn index(&self) -> usize;

    /// The cell's stable id.
    fn id(&self) -> &str;

    /// Serialize to one artifact line (bit-exact roundtrip through
    /// [`CellRecord::parse_line`]).
    fn to_line(&self) -> String;

    /// Parse one artifact line (inverse of [`CellRecord::to_line`]).
    fn parse_line(line: &str) -> Result<Self, CampaignError>;

    /// Condense the record for the equivalence harness. Artifact lines
    /// carry aggregates only, so `records` is `None` and per-job record
    /// comparison is (one-sidedly) skipped, as with the aggregates-only
    /// observation axis.
    fn fingerprint(&self) -> Fingerprint;
}

/// A plan the campaign execution stack can shard, run, serialize and
/// merge: an ordered cell list with stable whitespace-free ids, a cell
/// runner, and a per-cell straight-run reference for the equivalence
/// axis. [`CampaignPlan`] and [`crate::fleet::FleetPlan`] implement it —
/// that shared seam is what routes fleet sweeps through
/// [`InProcessBackend`] and the supervised process backend with zero
/// bespoke code paths.
pub trait Plan: Sync {
    /// The record type this plan's cells produce.
    type Record: CellRecord;

    /// File name the process backend publishes the manifest under in its
    /// artifact directory (`manifest.campaign` / `manifest.fleet`), so
    /// the directory is self-describing about which worker mode
    /// re-expands it.
    const MANIFEST_FILE: &'static str;

    /// Plan name (prefixes every cell id).
    fn name(&self) -> &str;

    /// Number of cells.
    fn len(&self) -> usize;

    /// Whether the plan has no cells.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cell `index`'s stable id (unique within the plan,
    /// whitespace-free).
    fn cell_id(&self, index: usize) -> &str;

    /// Cell `index`'s debug-formatted full configuration, as sealed into
    /// [`plan_fingerprint`]. f64 fields render shortest-roundtrip in
    /// `Debug` (injective over finite values), so any configuration edit
    /// re-fingerprints the plan even when cell ids stay put.
    fn cell_config(&self, index: usize) -> String;

    /// Run cells `start..end` in plan order and return their records in
    /// that order. `world_reuse` builds each distinct world once per call
    /// instead of once per cell; both modes must produce identical bytes
    /// (the reuse invariant every plan kind pins in tests).
    fn run_cells(&self, start: usize, end: usize, world_reuse: bool) -> Vec<Self::Record>;

    /// The straight-run reference fingerprint for cell `index` (fresh
    /// world, no sharding, no reuse) — what
    /// [`crate::equivalence::assert_campaign_equivalent`] compares every
    /// merged record against.
    fn reference_fingerprint(&self, index: usize) -> Fingerprint;
}

/// One cell's aggregate results, as carried by artifacts and reports.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// The cell's plan index (merge position).
    pub index: usize,
    /// The cell's stable id.
    pub id: String,
    /// Aggregate run totals.
    pub aggregates: RunAggregates,
    /// Aggregate job statistics.
    pub jobs: JobStats,
    /// Battery wear, cycles.
    pub battery_cycles: f64,
}

/// Fingerprint of a fully-expanded plan: FNV-1a over the plan name, cell
/// count, and every cell's id **and** debug-formatted configuration
/// ([`Plan::cell_config`]). Two plans agree iff their expansions are
/// observably identical, so an artifact stamped with this fingerprint can
/// be rejected as *stale* when the manifest changed in any way —
/// including base-scenario edits that cell ids alone would not reveal.
pub fn plan_fingerprint<P: Plan>(plan: &P) -> u64 {
    let mut text = String::new();
    let _ = write!(text, "{}\u{1e}{}", plan.name(), plan.len());
    for i in 0..plan.len() {
        let _ = write!(
            text,
            "\u{1e}{}\u{1f}{}",
            plan.cell_id(i),
            plan.cell_config(i)
        );
    }
    fnv1a(text.as_bytes())
}

/// A shard's serialized output, in the **versioned v1 artifact format**:
///
/// ```text
/// artifact v1 plan <fp> shard <i> of <k> range <start> <end>
/// cell …                                    # one line per cell, in plan order
/// checksum <sum>
/// ```
///
/// where `<fp>` is the 16-hex-digit [`plan_fingerprint`] of the producing
/// plan and `<sum>` is the 16-hex-digit FNV-1a of every byte before the
/// checksum line. The trailer makes damage detectable: truncation at any
/// byte removes or mutilates the checksum line, and any single-byte
/// change in the covered region changes the digest (each FNV-1a step
/// `h ← (h ⊕ b)·p` is a bijection on `u64` for fixed `b`, so a one-byte
/// difference can never cancel out). [`ShardArtifact::validate`] is the
/// single gatekeeper; produced by a [`ShardBackend`], consumed by
/// [`merge_artifacts`] and the process supervisor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardArtifact {
    /// The artifact text.
    pub text: String,
}

/// `f64` → bit-exact hex token (shared with the fleet layer's routing
/// records, which render the same byte-comparable report idiom).
pub(crate) fn fbits(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

/// Bit-exact hex token → `f64` (shared with the fleet layer's cell
/// records).
pub(crate) fn parse_fbits(tok: &str) -> Result<f64, CampaignError> {
    match u64::from_str_radix(tok, 16) {
        Ok(bits) => Ok(f64::from_bits(bits)),
        Err(_) => cerr(format!("bad f64 bits token `{tok}`")),
    }
}

pub(crate) fn parse_usize(tok: &str) -> Result<usize, CampaignError> {
    tok.parse::<usize>().map_err(|_| CampaignError {
        msg: format!("bad integer token `{tok}`"),
    })
}

impl CellResult {
    /// Serialize to one artifact line. Floats are emitted as `to_bits`
    /// hex, so a parse round-trip is bit-exact; the id is whitespace-free
    /// by plan construction, so the line splits back into fixed fields.
    pub fn to_line(&self) -> String {
        let a = &self.aggregates;
        let j = &self.jobs;
        format!(
            "cell {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {}",
            self.index,
            self.id,
            a.hours,
            fbits(a.energy_kwh),
            fbits(a.carbon_kg),
            fbits(a.cost_usd),
            fbits(a.water_l),
            fbits(a.it_energy_kwh),
            fbits(a.peak_power_kw),
            a.cooling_saturated_hours,
            fbits(a.purchased.0),
            fbits(a.green_weighted_kwh),
            fbits(a.pue_sum),
            a.pue_hours,
            j.submitted,
            j.completed,
            j.unfinished,
            fbits(j.mean_wait_hours),
            fbits(j.p95_wait_hours),
            fbits(j.mean_slowdown),
            j.slo_violations,
            fbits(j.slo_violation_fraction),
            fbits(j.gpu_hours_completed),
            fbits(self.battery_cycles),
        )
    }

    /// Parse one artifact line (inverse of [`CellResult::to_line`]).
    pub fn parse_line(line: &str) -> Result<CellResult, CampaignError> {
        let t: Vec<&str> = line.split_whitespace().collect();
        if t.len() != 25 || t[0] != "cell" {
            return cerr(format!(
                "malformed cell line (expected 25 tokens starting `cell`, got {}): `{line}`",
                t.len()
            ));
        }
        Ok(CellResult {
            index: parse_usize(t[1])?,
            id: t[2].to_string(),
            aggregates: RunAggregates {
                hours: parse_usize(t[3])?,
                energy_kwh: parse_fbits(t[4])?,
                carbon_kg: parse_fbits(t[5])?,
                cost_usd: parse_fbits(t[6])?,
                water_l: parse_fbits(t[7])?,
                it_energy_kwh: parse_fbits(t[8])?,
                peak_power_kw: parse_fbits(t[9])?,
                cooling_saturated_hours: parse_usize(t[10])?,
                purchased: Energy(parse_fbits(t[11])?),
                green_weighted_kwh: parse_fbits(t[12])?,
                pue_sum: parse_fbits(t[13])?,
                pue_hours: parse_usize(t[14])?,
            },
            jobs: JobStats {
                submitted: parse_usize(t[15])?,
                completed: parse_usize(t[16])?,
                unfinished: parse_usize(t[17])?,
                mean_wait_hours: parse_fbits(t[18])?,
                p95_wait_hours: parse_fbits(t[19])?,
                mean_slowdown: parse_fbits(t[20])?,
                slo_violations: parse_usize(t[21])?,
                slo_violation_fraction: parse_fbits(t[22])?,
                gpu_hours_completed: parse_fbits(t[23])?,
            },
            battery_cycles: parse_fbits(t[24])?,
        })
    }
}

impl ShardArtifact {
    /// Serialize `cells` (the records for `shard`'s range, in plan order)
    /// into the versioned artifact format, stamping the producing plan's
    /// fingerprint and sealing the text with its checksum trailer.
    pub fn compose<C: CellRecord>(plan_fp: u64, shard: &ShardSpec, cells: &[C]) -> ShardArtifact {
        let mut text = format!(
            "artifact v1 plan {plan_fp:016x} shard {} of {} range {} {}\n",
            shard.shard, shard.of, shard.start, shard.end
        );
        for cell in cells {
            text.push_str(&cell.to_line());
            text.push('\n');
        }
        let sum = fnv1a(text.as_bytes());
        let _ = writeln!(text, "checksum {sum:016x}");
        ShardArtifact { text }
    }

    /// Validate this artifact against `plan` (whose fingerprint is
    /// `plan_fp`, precomputed so merges validate K artifacts with one
    /// fingerprint pass) and return its parsed cells.
    ///
    /// Checks, in order: structural v1 shape (header + checksum trailer +
    /// trailing newline), content checksum (corruption/truncation),
    /// plan-fingerprint freshness (staleness), shard-range sanity — and
    /// equality with `expect` when the caller knows which shard it asked
    /// for — then per-cell parse, index coverage (exactly
    /// `range.start..range.end`, in order) and id agreement with the
    /// plan. Checksum precedes freshness so a damaged fingerprint field
    /// reads as corruption, not staleness.
    pub fn validate<P: Plan>(
        &self,
        plan: &P,
        plan_fp: u64,
        expect: Option<&ShardSpec>,
    ) -> Result<Vec<P::Record>, ArtifactIssue> {
        let parse = ArtifactIssue::Parse;
        let invalid = ArtifactIssue::Validation;
        let text = &self.text;
        if text.is_empty() {
            return Err(parse("artifact is empty".into()));
        }
        if !text.ends_with('\n') {
            return Err(parse("artifact is truncated (no trailing newline)".into()));
        }
        let lines: Vec<&str> = text.lines().collect();
        if lines.len() < 2 {
            return Err(parse("artifact is truncated (no checksum trailer)".into()));
        }

        // Header: `artifact v1 plan <fp> shard <i> of <k> range <a> <b>`.
        let h: Vec<&str> = lines[0].split_whitespace().collect();
        if h.len() != 11 || h[0] != "artifact" || h[2] != "plan" || h[4] != "shard" {
            return Err(parse(format!("malformed artifact header `{}`", lines[0])));
        }
        if h[1] != "v1" {
            return Err(invalid(format!(
                "unsupported artifact version `{}` (this reader understands v1)",
                h[1]
            )));
        }
        let stamped_fp = u64::from_str_radix(h[3], 16)
            .map_err(|_| parse(format!("bad plan fingerprint token `{}`", h[3])))?;
        let header_usize = |tok: &str, what: &str| {
            tok.parse::<usize>()
                .map_err(|_| parse(format!("bad {what} token `{tok}` in artifact header")))
        };
        let (shard, of) = (header_usize(h[5], "shard")?, header_usize(h[7], "of")?);
        let (start, end) = (header_usize(h[9], "range")?, header_usize(h[10], "range")?);

        // Checksum trailer: last line, sealing every byte before it. The
        // trailer is the one line outside its own coverage, so its
        // encoding must be canonical — exactly 16 *lowercase* hex digits
        // — or a case-flipped digit (`a` → `A`) would re-parse to the
        // same value and make that byte change undetectable.
        let trailer = lines[lines.len() - 1];
        let t: Vec<&str> = trailer.split_whitespace().collect();
        if t.len() != 2
            || t[0] != "checksum"
            || t[1].len() != 16
            || !t[1].bytes().all(|b| matches!(b, b'0'..=b'9' | b'a'..=b'f'))
        {
            return Err(parse(format!(
                "artifact is truncated or missing its checksum trailer (last line `{trailer}`)"
            )));
        }
        let declared = u64::from_str_radix(t[1], 16)
            .map_err(|_| parse(format!("bad checksum token `{}`", t[1])))?;
        let sealed_len = text.len() - (trailer.len() + 1);
        let computed = fnv1a(&text.as_bytes()[..sealed_len]);
        if computed != declared {
            return Err(invalid(format!(
                "checksum mismatch (declared {declared:016x}, computed {computed:016x}): \
                 artifact is corrupt or truncated"
            )));
        }

        if stamped_fp != plan_fp {
            return Err(invalid(format!(
                "stale artifact: plan fingerprint {stamped_fp:016x} does not match the \
                 current plan ({plan_fp:016x}) — the manifest changed since it was written"
            )));
        }
        if start > end || end > plan.len() || of == 0 || shard >= of {
            return Err(invalid(format!(
                "artifact shard {shard}/{of} range {start}..{end} is out of bounds for a \
                 plan of {} cells",
                plan.len()
            )));
        }
        if let Some(spec) = expect {
            if (shard, of, start, end) != (spec.shard, spec.of, spec.start, spec.end) {
                return Err(invalid(format!(
                    "artifact is for shard {shard}/{of} range {start}..{end}, expected \
                     shard {}/{} range {}..{}",
                    spec.shard, spec.of, spec.start, spec.end
                )));
            }
        }

        // Body: exactly the cells `start..end`, in plan order.
        let body = &lines[1..lines.len() - 1];
        if body.len() != end - start {
            return Err(invalid(format!(
                "artifact carries {} cell line(s) but declares range {start}..{end}",
                body.len()
            )));
        }
        let mut cells = Vec::with_capacity(body.len());
        for (offset, line) in body.iter().enumerate() {
            let cell = P::Record::parse_line(line).map_err(|e| parse(e.msg))?;
            let expected_index = start + offset;
            if cell.index() != expected_index {
                return Err(invalid(format!(
                    "cell at artifact position {offset} has index {} (expected \
                     {expected_index}: cells must cover the range in plan order)",
                    cell.index()
                )));
            }
            if plan.cell_id(cell.index()) != cell.id() {
                return Err(invalid(format!(
                    "cell index {} id mismatch: plan says `{}`, artifact says `{}`",
                    cell.index(),
                    plan.cell_id(cell.index()),
                    cell.id()
                )));
            }
            cells.push(cell);
        }
        Ok(cells)
    }
}

/// How a shard of a plan gets executed, generic over the plan kind. The
/// in-process backend below runs any [`Plan`]; the contract is shaped so
/// a process-per-shard or distributed backend (serialize the shard spec
/// out, collect artifact text back) drops in without touching the
/// expander or the merge.
pub trait ShardBackend<P: Plan>: Sync {
    /// Run every cell in `shard`'s range and return the serialized
    /// artifact, cells in plan order.
    fn run_shard(&self, plan: &P, shard: &ShardSpec) -> ShardArtifact;

    /// Fallible counterpart of [`ShardBackend::run_shard`]. Infallible
    /// backends get this for free (in-process execution can only fail by
    /// panicking, which stays a panic); supervising backends override it
    /// to surface spawn/exit/timeout/parse/validation failures as
    /// [`ShardError`] after their retry budget is spent.
    fn try_run_shard(&self, plan: &P, shard: &ShardSpec) -> Result<ShardArtifact, ShardError> {
        Ok(self.run_shard(plan, shard))
    }
}

/// In-process shard runner: replays each cell through the aggregates-only
/// observation fast path, optionally reusing worlds across cells whose
/// world-input keys match.
#[derive(Debug, Clone, Copy)]
pub struct InProcessBackend {
    /// Build each distinct world once per shard (`true`, the default) or
    /// once per cell (`false` — the per-cell reference the reuse tests
    /// and the perfjson campaign lane compare against).
    pub world_reuse: bool,
}

impl Default for InProcessBackend {
    fn default() -> InProcessBackend {
        InProcessBackend { world_reuse: true }
    }
}

impl InProcessBackend {
    /// Run one cell over a pre-built world.
    fn run_cell(cell: &CampaignCell, world: &World) -> CellResult {
        let out = SimDriver::run_observed(&cell.scenario, world, Observe::aggregates());
        CellResult {
            index: cell.index,
            id: cell.id.clone(),
            aggregates: out.aggregates,
            jobs: out.jobs,
            battery_cycles: out.battery_cycles,
        }
    }
}

impl<P: Plan> ShardBackend<P> for InProcessBackend {
    fn run_shard(&self, plan: &P, shard: &ShardSpec) -> ShardArtifact {
        let results = plan.run_cells(shard.start, shard.end, self.world_reuse);
        ShardArtifact::compose(plan_fingerprint(plan), shard, &results)
    }
}

impl CellRecord for CellResult {
    fn index(&self) -> usize {
        self.index
    }

    fn id(&self) -> &str {
        &self.id
    }

    fn to_line(&self) -> String {
        CellResult::to_line(self)
    }

    fn parse_line(line: &str) -> Result<CellResult, CampaignError> {
        CellResult::parse_line(line)
    }

    fn fingerprint(&self) -> Fingerprint {
        Fingerprint {
            energy_bits: self.aggregates.energy_kwh.to_bits(),
            carbon_bits: self.aggregates.carbon_kg.to_bits(),
            completed: self.jobs.completed,
            records: None,
        }
    }
}

impl Plan for CampaignPlan {
    type Record = CellResult;

    const MANIFEST_FILE: &'static str = "manifest.campaign";

    fn name(&self) -> &str {
        &self.name
    }

    fn len(&self) -> usize {
        self.cells.len()
    }

    fn cell_id(&self, index: usize) -> &str {
        &self.cells[index].id
    }

    fn cell_config(&self, index: usize) -> String {
        format!("{:?}", self.cells[index].scenario)
    }

    fn run_cells(&self, start: usize, end: usize, world_reuse: bool) -> Vec<CellResult> {
        let cells = &self.cells[start..end];
        let mut worlds: HashMap<String, World> = HashMap::new();
        let mut results = Vec::with_capacity(cells.len());
        for cell in cells {
            results.push(if world_reuse {
                let world = worlds
                    .entry(cell.scenario.world_inputs_key())
                    .or_insert_with(|| World::build(&cell.scenario));
                InProcessBackend::run_cell(cell, world)
            } else {
                InProcessBackend::run_cell(cell, &World::build(&cell.scenario))
            });
        }
        results
    }

    fn reference_fingerprint(&self, index: usize) -> Fingerprint {
        crate::equivalence::fingerprint(&self.cells[index].scenario)
    }
}

/// The merged output of a campaign: every cell's record, in plan order.
/// Generic over the record kind (defaulting to campaign cells, so
/// existing `CampaignReport` annotations keep meaning what they did);
/// fleet campaigns merge into a `CampaignReport<FleetCellResult>`.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport<C = CellResult> {
    /// Plan name.
    pub name: String,
    /// Per-cell records; `cells[i].index == i`.
    pub cells: Vec<C>,
}

impl<C: CellRecord> CampaignReport<C> {
    /// Look a cell up by id (the id doubles as the scenario/fleet name,
    /// so equivalence runners and migrated call sites key on it).
    pub fn get(&self, id: &str) -> Option<&C> {
        self.cells.iter().find(|c| c.id() == id)
    }

    /// The canonical serialized report: one line per cell, in plan order,
    /// preceded by a header. Byte-identical across shard counts and
    /// thread counts — this is the text the CI campaign smoke jobs
    /// compare.
    pub fn to_text(&self) -> String {
        let mut out = format!("campaign {} cells {}\n", self.name, self.cells.len());
        for c in &self.cells {
            out.push_str(&c.to_line());
            out.push('\n');
        }
        out
    }
}

/// Merge shard artifacts back into one report. Every artifact is put
/// through [`ShardArtifact::validate`] first (version, checksum, plan
/// fingerprint, range, per-cell ids — with the plan fingerprint computed
/// once here, not per artifact), then each cell is placed by plan index
/// with coverage validation: every plan cell exactly once.
pub fn merge_artifacts<P: Plan>(
    plan: &P,
    artifacts: &[ShardArtifact],
) -> Result<CampaignReport<P::Record>, CampaignError> {
    let plan_fp = plan_fingerprint(plan);
    let mut slots: Vec<Option<P::Record>> = vec![None; plan.len()];
    for (nth, artifact) in artifacts.iter().enumerate() {
        let cells = artifact
            .validate(plan, plan_fp, None)
            .map_err(|e| CampaignError {
                msg: format!("artifact {nth}: {e}"),
            })?;
        for cell in cells {
            // validate() bounds-checked the range against the plan.
            let slot = &mut slots[cell.index()];
            if slot.is_some() {
                return cerr(format!("cell {} delivered twice", cell.id()));
            }
            *slot = Some(cell);
        }
    }
    let mut cells = Vec::with_capacity(plan.len());
    for (i, slot) in slots.into_iter().enumerate() {
        match slot {
            Some(c) => cells.push(c),
            None => {
                return cerr(format!(
                    "cell `{}` missing from every artifact",
                    plan.cell_id(i)
                ))
            }
        }
    }
    Ok(CampaignReport {
        name: plan.name().to_string(),
        cells,
    })
}

/// Run a whole campaign: partition into `shards` shards, fan the shards
/// out across threads (outer sweep level), merge. The merged report is
/// bit-identical for any `shards ≥ 1` and any `RAYON_NUM_THREADS`.
///
/// Shards run through the fallible seam
/// ([`ShardBackend::try_run_shard`]); if any shard fails after the
/// backend's own recovery (retries, resume) is exhausted, the error for
/// the **lowest-indexed** failing shard is reported — deterministic no
/// matter which shard's thread finished first.
pub fn run_campaign<P: Plan>(
    plan: &P,
    backend: &impl ShardBackend<P>,
    shards: usize,
) -> Result<CampaignReport<P::Record>, CampaignError> {
    let specs = partition(plan.len(), shards);
    let outcomes = sweep::run(&specs, |spec| backend.try_run_shard(plan, spec));
    let mut artifacts = Vec::with_capacity(outcomes.len());
    for outcome in outcomes {
        // sweep::run returns in spec order, so the first error seen is
        // the lowest shard ordinal.
        artifacts.push(outcome.map_err(|e| CampaignError { msg: e.to_string() })?);
    }
    merge_artifacts(plan, &artifacts)
}

#[cfg(test)]
mod tests {
    use super::super::manifest::CampaignManifest;
    use super::*;

    fn tiny_plan() -> CampaignPlan {
        CampaignManifest::parse(
            "name = t\n\
             base = quick:3@5\n\
             seeds = 1..3\n\
             axis policy = fcfs, easy\n",
        )
        .unwrap()
        .expand()
        .unwrap()
    }

    #[test]
    fn partition_is_balanced_and_covers() {
        for (n, k) in [(8, 1), (8, 2), (8, 3), (8, 8), (8, 11), (0, 3), (1, 4)] {
            let specs = partition(n, k);
            assert_eq!(specs.len(), k);
            assert_eq!(specs[0].start, 0);
            assert_eq!(specs[k - 1].end, n);
            for w in specs.windows(2) {
                assert_eq!(w[0].end, w[1].start, "contiguous");
            }
            let sizes: Vec<usize> = specs.iter().map(|s| s.end - s.start).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "balanced: {sizes:?}");
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn partition_rejects_zero_shards() {
        partition(4, 0);
    }

    #[test]
    fn cell_line_roundtrip_is_bit_exact() {
        let plan = tiny_plan();
        let artifact = InProcessBackend::default().run_shard(&plan, &partition(plan.len(), 1)[0]);
        // Body lines sit between the v1 header and the checksum trailer.
        let body: Vec<&str> = artifact
            .text
            .lines()
            .filter(|l| l.starts_with("cell "))
            .collect();
        for line in &body {
            let cell = CellResult::parse_line(line).unwrap();
            assert_eq!(&cell.to_line(), line, "roundtrip must be the identity");
        }
        assert_eq!(body.len(), plan.len());
        // Adversarial values survive too (NaN, −∞, −0.0).
        let mut doctored = CellResult::parse_line(body[0]).unwrap();
        doctored.aggregates.peak_power_kw = f64::NEG_INFINITY;
        doctored.aggregates.pue_sum = f64::NAN;
        doctored.battery_cycles = -0.0;
        let re = CellResult::parse_line(&doctored.to_line()).unwrap();
        assert_eq!(re.to_line(), doctored.to_line());
        assert!(re.aggregates.pue_sum.is_nan());
        assert_eq!(re.battery_cycles.to_bits(), (-0.0f64).to_bits());
    }

    /// Re-seal arbitrary artifact body text with a fresh, *correct*
    /// checksum trailer, so tests can forge semantically-wrong artifacts
    /// that still pass the corruption check and exercise the deeper
    /// validation layers.
    fn reseal(body: &str) -> ShardArtifact {
        let sum = fnv1a(body.as_bytes());
        ShardArtifact {
            text: format!("{body}checksum {sum:016x}\n"),
        }
    }

    /// Strip the checksum trailer, returning the body `reseal` accepts.
    fn unsealed(artifact: &ShardArtifact) -> String {
        let trailer_start = artifact.text.rfind("checksum ").unwrap();
        artifact.text[..trailer_start].to_string()
    }

    #[test]
    fn merge_rejects_missing_duplicate_and_mismatched_cells() {
        let plan = tiny_plan();
        let backend = InProcessBackend::default();
        let specs = partition(plan.len(), 3);
        let shards: Vec<ShardArtifact> =
            specs.iter().map(|s| backend.run_shard(&plan, s)).collect();

        // Missing: deliver only two of the three shards.
        let e = merge_artifacts(&plan, &shards[..2]).unwrap_err();
        assert!(e.msg.contains("missing"), "{e}");

        // Duplicate: deliver shard 0 twice alongside full coverage.
        let with_dup = [
            shards[0].clone(),
            shards[1].clone(),
            shards[2].clone(),
            shards[0].clone(),
        ];
        let e = merge_artifacts(&plan, &with_dup).unwrap_err();
        assert!(e.msg.contains("twice"), "{e}");

        // Mismatched id: forge one cell's id and re-seal the checksum, so
        // the forgery survives the corruption check and must be caught by
        // id validation.
        let forged_body =
            unsealed(&shards[2]).replacen(&plan.cells[specs[2].start].id, "t/forged", 1);
        let forged = reseal(&forged_body);
        let e =
            merge_artifacts(&plan, &[shards[0].clone(), shards[1].clone(), forged]).unwrap_err();
        assert!(e.msg.contains("id mismatch"), "{e}");
    }

    #[test]
    fn validate_rejects_each_damage_class_precisely() {
        let plan = tiny_plan();
        let fp = plan_fingerprint(&plan);
        let spec = partition(plan.len(), 2)[0];
        let good = InProcessBackend::default().run_shard(&plan, &spec);
        good.validate(&plan, fp, Some(&spec)).unwrap();

        let expect_reject = |artifact: &ShardArtifact, needle: &str| {
            let issue = artifact.validate(&plan, fp, Some(&spec)).unwrap_err();
            assert!(
                issue.msg().contains(needle),
                "expected `{needle}` in `{issue}`"
            );
            // Merging must reject it for the same underlying reason.
            let e = merge_artifacts(&plan, std::slice::from_ref(artifact)).unwrap_err();
            assert!(e.msg.contains(needle), "merge accepted it: {e}");
        };

        // Unsupported format version.
        let v2 = reseal(&unsealed(&good).replacen("artifact v1", "artifact v2", 1));
        expect_reject(&v2, "unsupported artifact version");

        // Stale plan fingerprint: a plan whose only difference is a
        // base-scenario edit (same cell ids, different scenario).
        let other_plan = CampaignManifest::parse(
            "name = t\n\
             base = quick:4@5\n\
             seeds = 1..3\n\
             axis policy = fcfs, easy\n",
        )
        .unwrap()
        .expand()
        .unwrap();
        assert_eq!(other_plan.cells[0].id, plan.cells[0].id, "ids must agree");
        let stale = InProcessBackend::default().run_shard(&other_plan, &spec);
        expect_reject(&stale, "stale artifact");

        // Truncation: any prefix cut loses or damages the trailer.
        let cut = ShardArtifact {
            text: good.text[..good.text.len() - 2].to_string(),
        };
        assert!(cut.validate(&plan, fp, Some(&spec)).is_err());

        // Single-byte corruption in the covered region.
        let mut bytes = good.text.clone().into_bytes();
        bytes[good.text.len() / 2] ^= 0x01;
        if let Ok(text) = String::from_utf8(bytes) {
            expect_reject(&ShardArtifact { text }, "checksum mismatch");
        }

        // Wrong shard range vs. what the supervisor asked for.
        let other_spec = partition(plan.len(), 2)[1];
        let wrong = InProcessBackend::default().run_shard(&plan, &other_spec);
        let issue = wrong.validate(&plan, fp, Some(&spec)).unwrap_err();
        assert!(issue.msg().contains("expected"), "{issue}");
        // …but with no expectation (merge path) it is fine.
        wrong.validate(&plan, fp, None).unwrap();

        // Range out of bounds for the plan.
        let oob = reseal(&format!(
            "artifact v1 plan {fp:016x} shard 0 of 1 range 0 {}\n",
            plan.len() + 1
        ));
        expect_reject(&oob, "out of bounds");

        // Cell count disagreeing with the declared range.
        let mut lines: Vec<&str> = good.text.lines().collect();
        lines.remove(1); // drop the first cell line, keep header
        lines.pop(); // drop the stale trailer
        let mut body = lines.join("\n");
        body.push('\n');
        expect_reject(&reseal(&body), "cell line(s)");

        // Malformed header.
        let issue = reseal("garbage header\n")
            .validate(&plan, fp, None)
            .unwrap_err();
        assert!(matches!(issue, ArtifactIssue::Parse(_)), "{issue}");
    }

    #[test]
    fn partition_and_run_handle_single_cell_plans() {
        let plan = CampaignManifest::parse("name = solo\nbase = quick:2@9\nseeds = 9\n")
            .unwrap()
            .expand()
            .unwrap();
        assert_eq!(plan.len(), 1);
        // k > n: every extra shard is an empty range that merges away.
        for k in [1, 2, 5] {
            let specs = partition(plan.len(), k);
            assert_eq!(specs.len(), k);
            assert!(specs[1..].iter().all(|s| s.start == s.end));
            let report = run_campaign(&plan, &InProcessBackend::default(), k).unwrap();
            assert_eq!(report.cells.len(), 1);
            assert_eq!(
                report.to_text(),
                run_campaign(&plan, &InProcessBackend::default(), 1)
                    .unwrap()
                    .to_text()
            );
        }
        // An empty shard's artifact still validates (zero cells).
        let fp = plan_fingerprint(&plan);
        let empty_spec = partition(plan.len(), 3)[2];
        let empty = InProcessBackend::default().run_shard(&plan, &empty_spec);
        assert!(empty
            .validate(&plan, fp, Some(&empty_spec))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn merged_report_is_shard_count_invariant() {
        let plan = tiny_plan();
        let backend = InProcessBackend::default();
        let reference = run_campaign(&plan, &backend, 1).unwrap().to_text();
        for k in [2, 3, plan.len(), plan.len() + 3] {
            let merged = run_campaign(&plan, &backend, k).unwrap().to_text();
            assert_eq!(merged, reference, "shard count {k} changed the report");
        }
    }

    #[test]
    fn world_reuse_matches_per_cell_builds() {
        let plan = tiny_plan();
        assert_eq!(
            plan.distinct_worlds(),
            2,
            "policy axis shares worlds per seed"
        );
        let reused = run_campaign(&plan, &InProcessBackend { world_reuse: true }, 1).unwrap();
        let rebuilt = run_campaign(&plan, &InProcessBackend { world_reuse: false }, 1).unwrap();
        // Bit-identical — not approximately equal — via the canonical text.
        assert_eq!(reused.to_text(), rebuilt.to_text());
    }

    #[test]
    fn report_lookup_by_id() {
        let plan = tiny_plan();
        let report = run_campaign(&plan, &InProcessBackend::default(), 2).unwrap();
        let id = &plan.cells[3].id;
        assert_eq!(report.get(id).unwrap().index, 3);
        assert!(report.get("t/absent").is_none());
    }

    mod props {
        use super::super::super::manifest::{AxisValue, CampaignManifest, Knob};
        use super::*;
        use crate::scenario::Scenario;
        use greener_sched::PolicyKind;
        use proptest::prelude::*;

        /// Build the straight-run reference text: every cell executed
        /// individually (fresh world each, no sharding, no reuse) through
        /// the plain `sweep::run_seeded` fan-out, serialized with the same
        /// encoding the artifact layer uses. Bit-exact float encoding makes
        /// text equality exactly aggregate bit equality.
        fn straight_text(plan: &CampaignPlan) -> String {
            let lines = sweep::run_seeded(&plan.cells, 0, |_, cell, _hub| {
                let world = World::build(&cell.scenario);
                InProcessBackend::run_cell(cell, &world).to_line()
            });
            let mut out = format!("campaign {} cells {}\n", plan.name, plan.cells.len());
            for line in lines {
                out.push_str(&line);
                out.push('\n');
            }
            out
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(
                crate::equivalence::proptest_cases(4)
            ))]
            /// Shard-and-merge bit-equality over random small manifests:
            /// for every shard count in {1, 2, 7, cells} and
            /// `RAYON_NUM_THREADS` in {1, 4}, with and without world
            /// reuse, the merged report text equals the straight
            /// `run_seeded` reference byte for byte. (The vendored rayon
            /// reads the variable per call and every engine axis is
            /// thread-count-invariant, so toggling it in-process is safe.)
            #[test]
            fn sharded_merge_equals_straight_run_seeded(
                days in 2usize..4,
                world_seed in 0u64..500,
                two_seeds in 0u8..2,
                policy_mask in 1u8..8,
                slo_axis in 0u8..2,
            ) {
                let (two_seeds, slo_axis) = (two_seeds == 1, slo_axis == 1);
                let all = [
                    PolicyKind::Fcfs,
                    PolicyKind::EasyBackfill,
                    PolicyKind::CarbonAware { green_threshold: 0.06 },
                ];
                let policies: Vec<AxisValue> = all
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| policy_mask & (1 << i) != 0)
                    .map(|(_, &p)| AxisValue::Policy(p))
                    .collect();
                let mut manifest =
                    CampaignManifest::new("prop", Scenario::quick(days, world_seed))
                        .with_axis(Knob::Policy, policies)
                        .with_seeds(if two_seeds {
                            vec![world_seed, world_seed + 1]
                        } else {
                            vec![world_seed]
                        });
                if slo_axis {
                    manifest = manifest.with_axis(
                        Knob::SloWaitHours,
                        vec![AxisValue::Real(12.0), AxisValue::Real(24.0)],
                    );
                }
                let plan = manifest.expand().unwrap();
                let reference = straight_text(&plan);
                let prior = std::env::var("RAYON_NUM_THREADS").ok();
                for threads in ["1", "4"] {
                    std::env::set_var("RAYON_NUM_THREADS", threads);
                    for world_reuse in [true, false] {
                        let backend = InProcessBackend { world_reuse };
                        for k in [1, 2, 7, plan.len()] {
                            let merged =
                                run_campaign(&plan, &backend, k).unwrap().to_text();
                            prop_assert!(
                                merged == reference,
                                "diverged at shards={k} threads={threads} reuse={world_reuse}"
                            );
                        }
                    }
                }
                match prior {
                    Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
                    None => std::env::remove_var("RAYON_NUM_THREADS"),
                }
            }
        }

        /// One valid artifact, built once and shared across all proptest
        /// cases (the corruption property needs many cheap mutations of
        /// the same expensive-to-produce text).
        fn golden() -> &'static (CampaignPlan, u64, ShardArtifact) {
            static GOLDEN: std::sync::OnceLock<(CampaignPlan, u64, ShardArtifact)> =
                std::sync::OnceLock::new();
            GOLDEN.get_or_init(|| {
                let plan = super::tiny_plan();
                let fp = plan_fingerprint(&plan);
                let artifact =
                    InProcessBackend::default().run_shard(&plan, &partition(plan.len(), 1)[0]);
                (plan, fp, artifact)
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(
                crate::equivalence::proptest_cases(16)
            ))]
            /// Random damage to a valid artifact is **always** detected:
            /// truncation at any byte offset, and a single-bit flip of
            /// any byte, must both fail validation and be refused by the
            /// merge. (A flip that breaks UTF-8 counts as detected — the
            /// damaged bytes cannot even become an artifact string.)
            #[test]
            fn corruption_is_always_detected(
                cut in 0usize..1_000_000,
                flip_pos in 0usize..1_000_000,
                flip_bit in 0u8..8,
            ) {
                let (plan, fp, artifact) = golden();
                let n = artifact.text.len();

                // Truncation at any byte (artifact text is ASCII, so
                // every byte offset is a char boundary).
                let truncated = ShardArtifact {
                    text: artifact.text[..cut % n].to_string(),
                };
                prop_assert!(truncated.validate(plan, *fp, None).is_err());
                prop_assert!(merge_artifacts(plan, &[truncated]).is_err());

                // Single-bit flip of any byte.
                let mut bytes = artifact.text.clone().into_bytes();
                bytes[flip_pos % n] ^= 1 << flip_bit;
                if let Ok(text) = String::from_utf8(bytes) {
                    let flipped = ShardArtifact { text };
                    prop_assert!(flipped.validate(plan, *fp, None).is_err());
                    prop_assert!(merge_artifacts(plan, &[flipped]).is_err());
                }
            }
        }
    }
}
