//! Manifest → plan expansion.
//!
//! A [`CampaignPlan`] is the fully-expanded, ordered list of cells a
//! manifest describes. The order is the contract everything downstream
//! leans on: axes expand **row-major in declaration order** (first axis
//! outermost) with the seed axis innermost, via
//! [`greener_simkit::sweep::gridn_indices`] — the same odometer that
//! drives `grid2`/`grid3`, so migrated call sites keep their historical
//! iteration order bit-for-bit. Shard partitioning and artifact merging
//! both index into this order, which is what makes the merged report
//! independent of the shard count.

use greener_simkit::sweep::gridn_indices;

use crate::scenario::Scenario;

use super::manifest::{CampaignManifest, ManifestError};

/// One fully-resolved run of a campaign.
#[derive(Debug, Clone)]
pub struct CampaignCell {
    /// Position in plan order (also the merge position).
    pub index: usize,
    /// Stable human-readable id:
    /// `<campaign>/<knob>=<label>/…/seed=<s>` — unique within the plan,
    /// whitespace-free, independent of shard count and thread count.
    pub id: String,
    /// The root seed this cell runs under (already applied to
    /// [`CampaignCell::scenario`]).
    pub seed: u64,
    /// The concrete scenario (base + this cell's axis values + seed); its
    /// `name` is the cell id.
    pub scenario: Scenario,
}

/// An expanded campaign: the manifest plus its ordered cells.
#[derive(Debug, Clone)]
pub struct CampaignPlan {
    /// Campaign name (from the manifest).
    pub name: String,
    /// The cells, in row-major plan order; `cells[i].index == i`.
    pub cells: Vec<CampaignCell>,
}

impl CampaignManifest {
    /// Expand the manifest into its ordered cell list.
    ///
    /// Deterministic: depends only on the manifest, never on thread count
    /// or timing. Fails if the axis *names* are not unique and
    /// whitespace-free (the text parser rejects duplicates, but
    /// programmatic [`CampaignManifest::with_axis`] chains can repeat a
    /// knob, and axis names are embedded verbatim in cell ids), or if two
    /// cells would share an id — possible when an axis sweeps values whose
    /// labels round to the same rendering (e.g. `cap:160.2, cap:160.4`
    /// both label `static-cap-160W`) — because downstream lookup
    /// (equivalence, migrated call sites) is by id.
    pub fn expand(&self) -> Result<CampaignPlan, ManifestError> {
        let mut seen_axes = std::collections::HashSet::with_capacity(self.axes.len());
        for axis in &self.axes {
            let name = axis.knob.name();
            if name.is_empty() || name.contains(char::is_whitespace) {
                return Err(ManifestError {
                    line: 0,
                    msg: format!(
                        "axis name `{name}` must be non-empty and whitespace-free \
                         (axis names are embedded in cell ids)"
                    ),
                });
            }
            if !seen_axes.insert(name) {
                return Err(ManifestError {
                    line: 0,
                    msg: format!(
                        "duplicate axis `{name}` (each knob may be swept by at most one axis)"
                    ),
                });
            }
        }
        let mut dims: Vec<usize> = self.axes.iter().map(|a| a.values.len()).collect();
        dims.push(self.seeds.len()); // seed axis, innermost
        let mut cells = Vec::with_capacity(self.cell_count());
        for (index, ix) in gridn_indices(&dims).into_iter().enumerate() {
            let (&seed_ix, axis_ix) = ix.split_last().expect("dims has the seed axis");
            let seed = self.seeds[seed_ix];
            let mut scenario = self.base.clone().with_seed(seed);
            let mut id = self.name.clone();
            for (axis, &vi) in self.axes.iter().zip(axis_ix) {
                let value = &axis.values[vi];
                axis.knob.apply(&mut scenario, &self.base, value);
                id.push('/');
                id.push_str(axis.knob.name());
                id.push('=');
                id.push_str(&value.label());
            }
            id.push_str(&format!("/seed={seed}"));
            scenario.name = id.clone();
            cells.push(CampaignCell {
                index,
                id,
                seed,
                scenario,
            });
        }
        let mut seen = std::collections::HashSet::with_capacity(cells.len());
        for c in &cells {
            if !seen.insert(c.id.as_str()) {
                return Err(ManifestError {
                    line: 0,
                    msg: format!("duplicate cell id `{}` (axis value labels collide)", c.id),
                });
            }
        }
        Ok(CampaignPlan {
            name: self.name.clone(),
            cells,
        })
    }
}

impl CampaignPlan {
    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the plan is empty (an axis with zero values).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Number of *distinct worlds* the plan needs
    /// (cells grouped by [`Scenario::world_inputs_key`]) — what the
    /// world-reuse cache caps shard-local world builds at.
    pub fn distinct_worlds(&self) -> usize {
        self.cells
            .iter()
            .map(|c| c.scenario.world_inputs_key())
            .collect::<std::collections::HashSet<_>>()
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::super::manifest::{AxisValue, Knob};
    use super::*;
    use greener_sched::PolicyKind;

    fn demo_manifest() -> CampaignManifest {
        CampaignManifest::parse(
            "name = demo\n\
             base = quick:4@11\n\
             seeds = 1..3\n\
             axis policy = fcfs, easy\n\
             axis slo_wait_hours = 12, 24\n",
        )
        .unwrap()
    }

    #[test]
    fn expansion_is_row_major_with_seeds_innermost() {
        let plan = demo_manifest().expand().unwrap();
        assert_eq!(plan.len(), 2 * 2 * 2);
        let ids: Vec<&str> = plan.cells.iter().map(|c| c.id.as_str()).collect();
        assert_eq!(
            ids,
            vec![
                "demo/policy=fcfs/slo_wait_hours=12.0/seed=1",
                "demo/policy=fcfs/slo_wait_hours=12.0/seed=2",
                "demo/policy=fcfs/slo_wait_hours=24.0/seed=1",
                "demo/policy=fcfs/slo_wait_hours=24.0/seed=2",
                "demo/policy=easy-backfill/slo_wait_hours=12.0/seed=1",
                "demo/policy=easy-backfill/slo_wait_hours=12.0/seed=2",
                "demo/policy=easy-backfill/slo_wait_hours=24.0/seed=1",
                "demo/policy=easy-backfill/slo_wait_hours=24.0/seed=2",
            ]
        );
        for (i, c) in plan.cells.iter().enumerate() {
            assert_eq!(c.index, i);
            assert_eq!(c.scenario.name, c.id);
            assert_eq!(c.scenario.seed, c.seed);
            assert!(!c.id.contains(char::is_whitespace));
        }
        // Policy/SLO are replay knobs: one world per seed.
        assert_eq!(plan.distinct_worlds(), 2);
    }

    #[test]
    fn axis_values_are_applied() {
        let plan = demo_manifest().expand().unwrap();
        assert_eq!(plan.cells[0].scenario.policy, PolicyKind::Fcfs);
        assert_eq!(plan.cells[0].scenario.slo_wait_hours, 12.0);
        assert_eq!(plan.cells[7].scenario.policy, PolicyKind::EasyBackfill);
        assert_eq!(plan.cells[7].scenario.slo_wait_hours, 24.0);
        // Base fields not on an axis are untouched.
        assert_eq!(plan.cells[0].scenario.horizon_hours, 4 * 24);
    }

    #[test]
    fn colliding_labels_are_rejected() {
        let m = CampaignManifest::new("c", Scenario::quick(3, 1)).with_axis(
            Knob::Policy,
            vec![
                AxisValue::Policy(PolicyKind::StaticCap { cap_w: 160.2 }),
                AxisValue::Policy(PolicyKind::StaticCap { cap_w: 160.4 }),
            ],
        );
        let e = m.expand().unwrap_err();
        assert!(e.msg.contains("duplicate cell id"), "{e}");
    }

    #[test]
    fn duplicate_axis_names_are_rejected_at_expansion() {
        // The text parser rejects a repeated `axis policy = …` line, but a
        // programmatic with_axis chain can sweep the same knob twice —
        // expansion must catch it with a precise error.
        let m = CampaignManifest::new("dup", Scenario::quick(3, 1))
            .with_axis(Knob::Policy, vec![AxisValue::Policy(PolicyKind::Fcfs)])
            .with_axis(
                Knob::Policy,
                vec![AxisValue::Policy(PolicyKind::EasyBackfill)],
            );
        let e = m.expand().unwrap_err();
        assert_eq!(e.line, 0);
        assert!(e.msg.contains("duplicate axis `policy`"), "{e}");
    }

    #[test]
    fn world_affecting_axis_grows_distinct_worlds() {
        let m = CampaignManifest::new("w", Scenario::quick(3, 1))
            .with_axis(
                Knob::HorizonDays,
                vec![AxisValue::Count(3), AxisValue::Count(4)],
            )
            .with_axis(
                Knob::Policy,
                vec![
                    AxisValue::Policy(PolicyKind::Fcfs),
                    AxisValue::Policy(PolicyKind::Sjf),
                ],
            );
        let plan = m.expand().unwrap();
        assert_eq!(plan.len(), 4);
        assert_eq!(plan.distinct_worlds(), 2); // horizon is a world input
    }
}
