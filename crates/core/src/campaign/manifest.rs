//! The campaign manifest: a declarative description of an experiment
//! batch — base scenario preset + named axes × values + a seed range —
//! and its hand-rolled parser.
//!
//! The text format is a small line-oriented `key = value` dialect (the
//! vendored serde stand-in has no serializer, so the format is owned
//! here; see the module docs in [`crate::campaign`] for the full spec and
//! a runnable example). Manifests can also be built programmatically with
//! [`CampaignManifest::new`] + [`CampaignManifest::with_axis`] — that is
//! how `Eq1Problem::grid_search` rides the expander.

use greener_forecast::ForecasterKind;
use greener_sched::PolicyKind;
use greener_workload::DeadlinePolicy;

use crate::scenario::{ForecastMode, Scenario};

/// A manifest parse/validation error, carrying the 1-based line number
/// for text manifests (line 0 = whole-manifest validation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestError {
    /// 1-based source line (0 when the error is not tied to one line).
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for ManifestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "manifest: {}", self.msg)
        } else {
            write!(f, "manifest line {}: {}", self.line, self.msg)
        }
    }
}

impl std::error::Error for ManifestError {}

fn err<T>(line: usize, msg: impl Into<String>) -> Result<T, ManifestError> {
    Err(ManifestError {
        line,
        msg: msg.into(),
    })
}

/// One value on a campaign axis. The variant set mirrors what the knobs
/// accept; [`AxisValue::label`] is the stable rendering cell ids are built
/// from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AxisValue {
    /// A scheduling policy descriptor.
    Policy(PolicyKind),
    /// A forecast source.
    Forecast(ForecastMode),
    /// A deadline-restructuring policy.
    Deadline(DeadlinePolicy),
    /// An unsigned integer (horizons, node counts).
    Count(u64),
    /// A real number (rates, multipliers, thresholds).
    Real(f64),
}

impl AxisValue {
    /// Stable display form (feeds cell ids, so it must not change
    /// gratuitously). `Real` uses the shortest-roundtrip rendering, which
    /// is injective over finite values.
    pub fn label(&self) -> String {
        match self {
            AxisValue::Policy(p) => p.label(),
            AxisValue::Forecast(ForecastMode::Oracle) => "oracle".into(),
            AxisValue::Forecast(ForecastMode::Naive) => "naive".into(),
            AxisValue::Forecast(ForecastMode::Model(k)) => format!("model-{k:?}"),
            AxisValue::Deadline(d) => d.label().into(),
            AxisValue::Count(n) => n.to_string(),
            AxisValue::Real(x) => format!("{x:?}"),
        }
    }
}

/// The closed set of scenario knobs an axis can sweep. Each knob knows how
/// to parse its values from manifest text and how to apply one to a
/// scenario; whether a knob is world-affecting is *not* encoded here — the
/// world-reuse cache derives that from
/// [`Scenario::world_inputs_key`] after application, so a knob can never
/// claim to be replay-only incorrectly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Knob {
    /// Scheduling policy (`policy`): `fcfs | sjf | easy | easy_depth:<k> |
    /// cap:<watts> | temp | carbon:<green-share> | green_queues:<watts> |
    /// carbon_temp`.
    Policy,
    /// Horizon in whole days (`horizon_days`): unsigned integer.
    HorizonDays,
    /// Base arrival rate, jobs/hour (`arrival_rate`): real.
    ArrivalRate,
    /// Demand surge multiplier (`surge_mult`): real.
    SurgeMult,
    /// Cluster node count (`nodes`): unsigned integer.
    Nodes,
    /// Cluster-size multiplier on the base node count (`qs_mult`): real —
    /// Eq. 1's `q_s` axis.
    QsMult,
    /// SLO wait threshold in hours (`slo_wait_hours`): real.
    SloWaitHours,
    /// Forecast source (`forecast`): `oracle | naive`.
    Forecast,
    /// Deadline-restructuring policy (`deadline`): `status_quo |
    /// uniform_spread | winter_spring | rolling`.
    Deadline,
}

impl Knob {
    /// Every knob, for docs and error messages.
    pub const ALL: [Knob; 9] = [
        Knob::Policy,
        Knob::HorizonDays,
        Knob::ArrivalRate,
        Knob::SurgeMult,
        Knob::Nodes,
        Knob::QsMult,
        Knob::SloWaitHours,
        Knob::Forecast,
        Knob::Deadline,
    ];

    /// The manifest keyword for this knob.
    pub fn name(&self) -> &'static str {
        match self {
            Knob::Policy => "policy",
            Knob::HorizonDays => "horizon_days",
            Knob::ArrivalRate => "arrival_rate",
            Knob::SurgeMult => "surge_mult",
            Knob::Nodes => "nodes",
            Knob::QsMult => "qs_mult",
            Knob::SloWaitHours => "slo_wait_hours",
            Knob::Forecast => "forecast",
            Knob::Deadline => "deadline",
        }
    }

    /// Look a knob up by manifest keyword.
    pub fn by_name(name: &str) -> Option<Knob> {
        Knob::ALL.iter().copied().find(|k| k.name() == name)
    }

    /// Parse one manifest value for this knob.
    pub fn parse_value(&self, raw: &str, line: usize) -> Result<AxisValue, ManifestError> {
        let raw = raw.trim();
        match self {
            Knob::Policy => parse_policy(raw, line).map(AxisValue::Policy),
            Knob::HorizonDays | Knob::Nodes => match raw.parse::<u64>() {
                Ok(n) if n > 0 => Ok(AxisValue::Count(n)),
                _ => err(
                    line,
                    format!("`{}` needs a positive integer, got `{raw}`", self.name()),
                ),
            },
            Knob::ArrivalRate | Knob::SurgeMult | Knob::QsMult | Knob::SloWaitHours => {
                match raw.parse::<f64>() {
                    Ok(x) if x.is_finite() && x > 0.0 => Ok(AxisValue::Real(x)),
                    _ => err(
                        line,
                        format!("`{}` needs a positive real, got `{raw}`", self.name()),
                    ),
                }
            }
            Knob::Forecast => match raw {
                "oracle" => Ok(AxisValue::Forecast(ForecastMode::Oracle)),
                "naive" => Ok(AxisValue::Forecast(ForecastMode::Naive)),
                "model" => Ok(AxisValue::Forecast(ForecastMode::Model(
                    ForecasterKind::SeasonalNaive,
                ))),
                _ => err(
                    line,
                    format!("unknown forecast `{raw}` (oracle | naive | model)"),
                ),
            },
            Knob::Deadline => match raw {
                "status_quo" => Ok(AxisValue::Deadline(DeadlinePolicy::StatusQuo)),
                "uniform_spread" => Ok(AxisValue::Deadline(DeadlinePolicy::UniformSpread)),
                "winter_spring" => Ok(AxisValue::Deadline(DeadlinePolicy::WinterSpring)),
                "rolling" => Ok(AxisValue::Deadline(DeadlinePolicy::Rolling)),
                _ => err(
                    line,
                    format!(
                        "unknown deadline policy `{raw}` (status_quo | uniform_spread | \
                         winter_spring | rolling)"
                    ),
                ),
            },
        }
    }

    /// Check that `value`'s variant is one this knob produces (guards the
    /// programmatic construction path, which skips [`Knob::parse_value`]).
    fn accepts(&self, value: &AxisValue) -> bool {
        matches!(
            (self, value),
            (Knob::Policy, AxisValue::Policy(_))
                | (Knob::HorizonDays | Knob::Nodes, AxisValue::Count(_))
                | (
                    Knob::ArrivalRate | Knob::SurgeMult | Knob::QsMult | Knob::SloWaitHours,
                    AxisValue::Real(_)
                )
                | (Knob::Forecast, AxisValue::Forecast(_))
                | (Knob::Deadline, AxisValue::Deadline(_))
        )
    }

    /// Apply one axis value to a scenario. `base` is the unmodified
    /// manifest base (for relative knobs like `qs_mult`).
    pub fn apply(&self, scenario: &mut Scenario, base: &Scenario, value: &AxisValue) {
        match (self, value) {
            (Knob::Policy, AxisValue::Policy(p)) => scenario.policy = *p,
            (Knob::HorizonDays, AxisValue::Count(d)) => {
                scenario.horizon_hours = *d as usize * 24;
            }
            (Knob::ArrivalRate, AxisValue::Real(r)) => {
                scenario.trace.demand.base_rate_per_hour = *r;
            }
            (Knob::SurgeMult, AxisValue::Real(m)) => scenario.trace.demand.surge_mult = *m,
            (Knob::Nodes, AxisValue::Count(n)) => scenario.cluster.nodes = *n as u32,
            (Knob::QsMult, AxisValue::Real(m)) => {
                // Matches `Eq1Problem::evaluate`'s historical rounding so
                // the migrated grid search stays bit-identical.
                scenario.cluster.nodes = (base.cluster.nodes as f64 * m).round().max(1.0) as u32;
            }
            (Knob::SloWaitHours, AxisValue::Real(h)) => scenario.slo_wait_hours = *h,
            (Knob::Forecast, AxisValue::Forecast(f)) => scenario.forecast = *f,
            (Knob::Deadline, AxisValue::Deadline(d)) => scenario.deadline_policy = *d,
            (knob, value) => unreachable!("axis value {value:?} on knob {knob:?}"),
        }
    }
}

/// `fcfs | sjf | easy | easy_depth:<k> | cap:<w> | temp | carbon:<g> |
/// green_queues:<w> | carbon_temp`.
fn parse_policy(raw: &str, line: usize) -> Result<PolicyKind, ManifestError> {
    let (head, arg) = match raw.split_once(':') {
        Some((h, a)) => (h, Some(a)),
        None => (raw, None),
    };
    let need_real = |arg: Option<&str>| -> Result<f64, ManifestError> {
        match arg.and_then(|a| a.parse::<f64>().ok()) {
            Some(x) if x.is_finite() && x > 0.0 => Ok(x),
            _ => err(
                line,
                format!("policy `{head}` needs a positive real argument"),
            ),
        }
    };
    match head {
        "fcfs" => Ok(PolicyKind::Fcfs),
        "sjf" => Ok(PolicyKind::Sjf),
        "easy" => Ok(PolicyKind::EasyBackfill),
        "easy_depth" => match arg.and_then(|a| a.parse::<u32>().ok()) {
            Some(depth) => Ok(PolicyKind::EasyBackfillLimited { depth }),
            None => err(line, "policy `easy_depth` needs an integer depth"),
        },
        "cap" => Ok(PolicyKind::StaticCap {
            cap_w: need_real(arg)?,
        }),
        "temp" => Ok(PolicyKind::TempAware),
        "carbon" => Ok(PolicyKind::CarbonAware {
            green_threshold: need_real(arg)?,
        }),
        "green_queues" => Ok(PolicyKind::GreenQueues {
            green_cap_w: need_real(arg)?,
        }),
        "carbon_temp" => Ok(PolicyKind::CarbonAndTempAware),
        _ => err(line, format!("unknown policy `{raw}`")),
    }
}

/// One declared axis: a knob and its swept values, in declaration order.
#[derive(Debug, Clone, PartialEq)]
pub struct Axis {
    /// Which scenario knob this axis sweeps.
    pub knob: Knob,
    /// The values, in sweep order (this axis's row-major position follows
    /// its declaration order in the manifest).
    pub values: Vec<AxisValue>,
}

/// A parsed (or programmatically built) campaign manifest.
///
/// `expand()` (see [`crate::campaign::CampaignPlan`]) turns it into the
/// ordered cell list everything downstream consumes.
#[derive(Debug, Clone)]
pub struct CampaignManifest {
    /// Campaign name (no whitespace — it prefixes every cell id).
    pub name: String,
    /// The base scenario every cell starts from.
    pub base: Scenario,
    /// Seed axis (innermost); defaults to the base scenario's seed.
    pub seeds: Vec<u64>,
    /// Swept axes, outermost first.
    pub axes: Vec<Axis>,
}

impl CampaignManifest {
    /// A programmatic manifest: `base`'s seed as the only seed, no axes
    /// yet.
    pub fn new(name: impl Into<String>, base: Scenario) -> CampaignManifest {
        let seeds = vec![base.seed];
        CampaignManifest {
            name: name.into(),
            base,
            seeds,
            axes: Vec::new(),
        }
    }

    /// Builder-style: append one axis (outermost first).
    ///
    /// # Panics
    /// If any value's variant does not belong to `knob`, or the axis is
    /// empty — programmatic manifests fail fast like text ones fail
    /// [`CampaignManifest::parse`].
    #[must_use]
    pub fn with_axis(mut self, knob: Knob, values: Vec<AxisValue>) -> CampaignManifest {
        assert!(!values.is_empty(), "axis `{}` has no values", knob.name());
        for v in &values {
            assert!(
                knob.accepts(v),
                "axis `{}` cannot carry value {v:?}",
                knob.name()
            );
        }
        self.axes.push(Axis { knob, values });
        self
    }

    /// Builder-style: replace the seed axis.
    ///
    /// # Panics
    /// If `seeds` is empty.
    #[must_use]
    pub fn with_seeds(mut self, seeds: Vec<u64>) -> CampaignManifest {
        assert!(!seeds.is_empty(), "a campaign needs at least one seed");
        self.seeds = seeds;
        self
    }

    /// Number of cells the manifest expands to.
    pub fn cell_count(&self) -> usize {
        self.axes.iter().map(|a| a.values.len()).product::<usize>() * self.seeds.len()
    }

    /// Parse a text manifest. See [`crate::campaign`] for the format.
    pub fn parse(text: &str) -> Result<CampaignManifest, ManifestError> {
        let mut name: Option<String> = None;
        let mut base: Option<Scenario> = None;
        let mut seeds: Option<Vec<u64>> = None;
        let mut axes: Vec<Axis> = Vec::new();

        for (i, raw_line) in text.lines().enumerate() {
            let line_no = i + 1;
            let line = match raw_line.split_once('#') {
                Some((before, _comment)) => before,
                None => raw_line,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = match line.split_once('=') {
                Some((k, v)) => (k.trim(), v.trim()),
                None => return err(line_no, format!("expected `key = value`, got `{line}`")),
            };
            if value.is_empty() {
                return err(line_no, format!("`{key}` has no value"));
            }
            match key {
                "name" => {
                    if name.is_some() {
                        return err(line_no, "duplicate `name`");
                    }
                    if value.split_whitespace().count() != 1 {
                        return err(
                            line_no,
                            "`name` must be a single token (it prefixes cell ids)",
                        );
                    }
                    name = Some(value.to_string());
                }
                "base" => {
                    if base.is_some() {
                        return err(line_no, "duplicate `base`");
                    }
                    base = Some(parse_base(value, line_no)?);
                }
                "seeds" => {
                    if seeds.is_some() {
                        return err(line_no, "duplicate `seeds`");
                    }
                    seeds = Some(parse_seeds(value, line_no)?);
                }
                _ => match key.strip_prefix("axis ").map(str::trim) {
                    Some(knob_name) => {
                        let knob = match Knob::by_name(knob_name) {
                            Some(k) => k,
                            None => {
                                return err(
                                    line_no,
                                    format!(
                                        "unknown axis knob `{knob_name}` (one of: {})",
                                        Knob::ALL.map(|k| k.name()).join(", ")
                                    ),
                                )
                            }
                        };
                        if axes.iter().any(|a| a.knob == knob) {
                            return err(line_no, format!("duplicate axis `{knob_name}`"));
                        }
                        let mut values = Vec::new();
                        for v in value.split(',') {
                            let v = knob.parse_value(v, line_no)?;
                            if values.contains(&v) {
                                return err(
                                    line_no,
                                    format!("axis `{knob_name}` repeats value `{}`", v.label()),
                                );
                            }
                            values.push(v);
                        }
                        axes.push(Axis { knob, values });
                    }
                    None => return err(line_no, format!("unknown key `{key}`")),
                },
            }
        }

        let name = match name {
            Some(n) => n,
            None => return err(0, "missing `name`"),
        };
        let base = match base {
            Some(b) => b,
            None => return err(0, "missing `base`"),
        };
        let seeds = seeds.unwrap_or_else(|| vec![base.seed]);
        Ok(CampaignManifest {
            name,
            base,
            seeds,
            axes,
        })
    }
}

/// `quick:<days> | small_2y | baseline_2y | one_year`, optionally with a
/// default seed suffix `@<seed>` (the `seeds` axis overrides it per cell).
pub(crate) fn parse_base(raw: &str, line: usize) -> Result<Scenario, ManifestError> {
    let (preset, seed) = match raw.split_once('@') {
        Some((p, s)) => match s.trim().parse::<u64>() {
            Ok(seed) => (p.trim(), seed),
            Err(_) => return err(line, format!("bad base seed `{s}`")),
        },
        None => (raw, 0),
    };
    match preset.split_once(':') {
        Some(("quick", days)) => match days.trim().parse::<usize>() {
            Ok(d) if d > 0 => Ok(Scenario::quick(d, seed)),
            _ => err(
                line,
                format!("`quick:<days>` needs a positive day count, got `{days}`"),
            ),
        },
        None if preset == "small_2y" => Ok(Scenario::two_year_small(seed)),
        None if preset == "baseline_2y" => Ok(Scenario::two_year_baseline(seed)),
        None if preset == "one_year" => Ok(Scenario::one_year_baseline(seed)),
        _ => err(
            line,
            format!(
                "unknown base preset `{preset}` (quick:<days> | small_2y | baseline_2y | one_year)"
            ),
        ),
    }
}

/// `lo..hi` (half-open, like Rust ranges) or a comma list `1, 2, 7`.
pub(crate) fn parse_seeds(raw: &str, line: usize) -> Result<Vec<u64>, ManifestError> {
    if let Some((lo, hi)) = raw.split_once("..") {
        let (lo, hi) = match (lo.trim().parse::<u64>(), hi.trim().parse::<u64>()) {
            (Ok(lo), Ok(hi)) => (lo, hi),
            _ => return err(line, format!("bad seed range `{raw}`")),
        };
        if hi <= lo {
            return err(
                line,
                format!("empty seed range `{raw}` (use `lo..hi` with hi > lo)"),
            );
        }
        if hi - lo > 1_000_000 {
            return err(
                line,
                format!("seed range `{raw}` is over a million cells wide"),
            );
        }
        return Ok((lo..hi).collect());
    }
    let mut seeds = Vec::new();
    for s in raw.split(',') {
        match s.trim().parse::<u64>() {
            Ok(seed) => {
                if seeds.contains(&seed) {
                    return err(line, format!("duplicate seed `{seed}`"));
                }
                seeds.push(seed);
            }
            Err(_) => return err(line, format!("bad seed `{}`", s.trim())),
        }
    }
    if seeds.is_empty() {
        return err(line, "empty `seeds`");
    }
    Ok(seeds)
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE: &str = "\
# A policy × horizon sweep over three seeds.
name = demo            # trailing comments are stripped
base = quick:5@11
seeds = 1..4
axis policy = fcfs, easy, cap:160, carbon:0.06
axis horizon_days = 4, 5
";

    #[test]
    fn example_manifest_parses() {
        let m = CampaignManifest::parse(EXAMPLE).unwrap();
        assert_eq!(m.name, "demo");
        assert_eq!(m.base.horizon_hours, 5 * 24);
        assert_eq!(m.base.seed, 11);
        assert_eq!(m.seeds, vec![1, 2, 3]);
        assert_eq!(m.axes.len(), 2);
        assert_eq!(m.axes[0].knob, Knob::Policy);
        assert_eq!(m.axes[0].values.len(), 4);
        assert_eq!(
            m.axes[0].values[2],
            AxisValue::Policy(PolicyKind::StaticCap { cap_w: 160.0 })
        );
        assert_eq!(
            m.axes[1].values,
            vec![AxisValue::Count(4), AxisValue::Count(5)]
        );
        assert_eq!(m.cell_count(), 4 * 2 * 3);
    }

    #[test]
    fn seeds_default_to_base_seed_and_lists_parse() {
        let m = CampaignManifest::parse("name = d\nbase = quick:3@7\n").unwrap();
        assert_eq!(m.seeds, vec![7]);
        assert_eq!(m.cell_count(), 1);
        let m = CampaignManifest::parse("name = d\nbase = quick:3\nseeds = 5, 9, 2\n").unwrap();
        assert_eq!(m.seeds, vec![5, 9, 2]);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let cases: &[(&str, usize, &str)] = &[
            (
                "name = d\nbase = quick:3\naxis poliyc = fcfs\n",
                3,
                "unknown axis knob",
            ),
            ("name = d\nbase = tiny\n", 2, "unknown base preset"),
            (
                "name = d\nbase = quick:3\naxis policy = fastest\n",
                3,
                "unknown policy",
            ),
            (
                "name = d\nbase = quick:3\nseeds = 9..9\n",
                3,
                "empty seed range",
            ),
            (
                "name = d\nbase = quick:3\nseeds = 1,1\n",
                3,
                "duplicate seed",
            ),
            (
                "name = d\nbase = quick:3\naxis policy = fcfs, fcfs\n",
                3,
                "repeats value",
            ),
            (
                "name = d\nbase = quick:3\nbase = quick:4\n",
                3,
                "duplicate `base`",
            ),
            (
                "name = d\nbase = quick:3\naxis horizon_days = 0\n",
                3,
                "positive integer",
            ),
            ("name = two words\nbase = quick:3\n", 1, "single token"),
            ("base = quick:3\n", 0, "missing `name`"),
            ("name = d\n", 0, "missing `base`"),
            (
                "name = d\nbase = quick:3\nwat\n",
                3,
                "expected `key = value`",
            ),
        ];
        for (text, line, needle) in cases {
            let e = CampaignManifest::parse(text).unwrap_err();
            assert_eq!(e.line, *line, "{text:?}: {e}");
            assert!(e.msg.contains(needle), "{text:?}: {e}");
        }
    }

    #[test]
    fn every_knob_parses_and_applies() {
        let base = Scenario::quick(4, 3);
        let cases: &[(Knob, &str)] = &[
            (Knob::Policy, "easy_depth:8"),
            (Knob::Policy, "green_queues:150"),
            (Knob::Policy, "temp"),
            (Knob::Policy, "carbon_temp"),
            (Knob::Policy, "sjf"),
            (Knob::HorizonDays, "6"),
            (Knob::ArrivalRate, "2.5"),
            (Knob::SurgeMult, "1.5"),
            (Knob::Nodes, "8"),
            (Knob::QsMult, "0.75"),
            (Knob::SloWaitHours, "12"),
            (Knob::Forecast, "naive"),
            (Knob::Deadline, "rolling"),
        ];
        for (knob, raw) in cases {
            let v = knob.parse_value(raw, 1).unwrap_or_else(|e| panic!("{e}"));
            let mut s = base.clone();
            knob.apply(&mut s, &base, &v);
            assert!(!v.label().is_empty());
        }
        // Spot-check the applications that compute rather than assign.
        let mut s = base.clone();
        Knob::QsMult.apply(&mut s, &base, &AxisValue::Real(0.25));
        assert_eq!(
            s.cluster.nodes,
            (base.cluster.nodes as f64 * 0.25).round() as u32
        );
        let mut s = base.clone();
        Knob::HorizonDays.apply(&mut s, &base, &AxisValue::Count(6));
        assert_eq!(s.horizon_hours, 6 * 24);
    }

    #[test]
    #[should_panic(expected = "cannot carry value")]
    fn programmatic_axis_rejects_mismatched_variant() {
        let _ = CampaignManifest::new("x", Scenario::quick(3, 1))
            .with_axis(Knob::Policy, vec![AxisValue::Count(3)]);
    }
}
