//! One Criterion bench per paper figure/table: each measures the cost of
//! regenerating the artifact from a pre-simulated run (the simulation
//! itself is benched separately in `engine.rs`).

use criterion::{criterion_group, criterion_main, Criterion};
use greener_core::driver::{RunResult, SimDriver};
use greener_core::experiments::{fig1, fig2, fig3, fig4, fig5, table1};
use greener_core::scenario::Scenario;
use greener_workload::ConferenceCalendar;
use std::hint::black_box;
use std::sync::OnceLock;

fn shared_run() -> &'static RunResult {
    static RUN: OnceLock<RunResult> = OnceLock::new();
    RUN.get_or_init(|| SimDriver::run(&Scenario::two_year_small(greener_bench::seeds::WORLD)))
}

fn bench_figures(c: &mut Criterion) {
    let run = shared_run();
    let calendar = ConferenceCalendar::table_i();

    c.bench_function("fig1_trends", |b| b.iter(|| black_box(fig1())));
    c.bench_function("fig2_power_mix", |b| b.iter(|| black_box(fig2(run))));
    c.bench_function("fig3_price_mix", |b| b.iter(|| black_box(fig3(run))));
    c.bench_function("fig4_power_temp", |b| b.iter(|| black_box(fig4(run))));
    c.bench_function("fig5_deadlines", |b| {
        b.iter(|| black_box(fig5(run, &calendar)))
    });
    c.bench_function("table1_conferences", |b| b.iter(|| black_box(table1())));
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(20);
    targets = bench_figures
}
criterion_main!(figures);
