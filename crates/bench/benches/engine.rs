//! Engine benchmarks: DES throughput, world generation, the year-scale
//! driver, parallel sweep scaling and forecaster fits — the hpc-parallel
//! performance surface of the workspace.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use greener_core::driver::SimDriver;
use greener_core::scenario::Scenario;
use greener_forecast::ForecasterKind;
use greener_simkit::calq::CalendarQueue;
use greener_simkit::des::{EventQueue, EventScheduler};
use greener_simkit::rng::RngHub;
use greener_simkit::time::SimTime;
use std::hint::black_box;

/// Schedule/pop churn through any scheduler core: pseudo-random times via
/// splitmix so the structure actually works for its ordering.
fn churn<Q: EventScheduler<u64>>(n: u64) -> u64 {
    let mut q = Q::with_hints(n as usize, 1_000_000);
    for i in 0..n {
        let t = greener_simkit::rng::splitmix64(i) % 1_000_000;
        q.schedule(SimTime(t), i);
    }
    let mut acc = 0u64;
    while let Some((_, e)) = q.pop() {
        acc = acc.wrapping_add(e);
    }
    acc
}

fn bench_des(c: &mut Criterion) {
    let mut g = c.benchmark_group("des");
    for &n in &[10_000u64, 100_000] {
        g.throughput(Throughput::Elements(n));
        g.bench_with_input(BenchmarkId::new("schedule_pop_heap", n), &n, |b, &n| {
            b.iter(|| black_box(churn::<EventQueue<u64>>(n)))
        });
        g.bench_with_input(BenchmarkId::new("schedule_pop_calendar", n), &n, |b, &n| {
            b.iter(|| black_box(churn::<CalendarQueue<u64>>(n)))
        });
    }
    g.finish();
}

fn bench_world(c: &mut Criterion) {
    let mut g = c.benchmark_group("world");
    g.sample_size(10);
    g.bench_function("weather_2y", |b| {
        let cal = greener_simkit::calendar::Calendar::new(greener_simkit::calendar::CalDate::new(
            2020, 1, 1,
        ));
        let hub = RngHub::new(1);
        b.iter(|| {
            black_box(greener_climate::WeatherPath::generate(
                &greener_climate::WeatherConfig::default(),
                cal,
                731 * 24,
                &hub,
            ))
        })
    });
    // World-generation lane: the parallel (default) schedule against the
    // sequential reference, and weather alone — so the split the perfjson
    // snapshot reports is also visible under criterion timing.
    g.bench_function("worldgen_2y_parallel", |b| {
        let s = Scenario::two_year_small(greener_bench::seeds::WORLD);
        b.iter(|| black_box(greener_core::driver::World::build(&s)))
    });
    g.bench_function("worldgen_2y_sequential", |b| {
        let s = Scenario::two_year_small(greener_bench::seeds::WORLD)
            .with_worldgen(greener_core::scenario::WorldGen::Sequential);
        b.iter(|| black_box(greener_core::driver::World::build(&s)))
    });
    g.bench_function("driver_quick_30d", |b| {
        let s = Scenario::quick(30, 3);
        b.iter(|| black_box(SimDriver::run(&s)))
    });
    g.bench_function("driver_small_2y", |b| {
        let s = Scenario::two_year_small(greener_bench::seeds::WORLD);
        b.iter(|| black_box(SimDriver::run(&s)))
    });
    // Replay-only lanes over a shared pre-built world: the full probe set
    // (what `SimDriver::run` retains) against the aggregates-only fast
    // path (what a sweep cell retains). The delta is the cost of hourly
    // frame assembly + ledger growth + job-record retention.
    g.bench_function("replay_small_2y_full", |b| {
        let s = Scenario::two_year_small(greener_bench::seeds::WORLD);
        let world = greener_core::driver::World::build(&s);
        b.iter(|| black_box(SimDriver::run_with_world(&s, &world)))
    });
    g.bench_function("replay_small_2y_aggregates", |b| {
        let s = Scenario::two_year_small(greener_bench::seeds::WORLD);
        let world = greener_core::driver::World::build(&s);
        b.iter(|| {
            black_box(SimDriver::run_observed(
                &s,
                &world,
                greener_core::probe::Observe::aggregates(),
            ))
        })
    });
    // The same aggregates-only replay with the lone-arrival fast path
    // disabled (`DispatchPath::Reference`): the delta to the lane above is
    // what the fast path buys on a scenario whose arrivals mostly meet an
    // empty queue.
    g.bench_function("replay_small_2y_reference_dispatch", |b| {
        let s = Scenario::two_year_small(greener_bench::seeds::WORLD)
            .with_dispatch(greener_core::scenario::DispatchPath::Reference);
        let world = greener_core::driver::World::build(&s);
        b.iter(|| {
            black_box(SimDriver::run_observed(
                &s,
                &world,
                greener_core::probe::Observe::aggregates(),
            ))
        })
    });
    // The same aggregates-only replay with the SoA apply slab disabled
    // (`ApplyPath::Reference`): the delta to `replay_small_2y_aggregates`
    // isolates what the split hot/cold job-state columns buy on the
    // start/finish hot loop.
    g.bench_function("replay_small_2y_reference_apply", |b| {
        let s = Scenario::two_year_small(greener_bench::seeds::WORLD)
            .with_apply(greener_core::scenario::ApplyPath::Reference);
        let world = greener_core::driver::World::build(&s);
        b.iter(|| {
            black_box(SimDriver::run_observed(
                &s,
                &world,
                greener_core::probe::Observe::aggregates(),
            ))
        })
    });
    // Saturated queue: thousands of waiting jobs, so every dispatch
    // stresses signal building and queue application end to end.
    g.bench_function("dispatch_heavy_90d", |b| {
        let s = greener_bench::scenarios::dispatch_heavy_90d(greener_bench::seeds::WORLD);
        b.iter(|| black_box(SimDriver::run(&s)))
    });
    // The same saturated queue with the backfill reject memo disabled
    // (`BackfillPath::Reference`): the delta to `dispatch_heavy_90d`
    // isolates what skipping proven-reject rescans buys when consecutive
    // dispatches face an unchanged queue head.
    g.bench_function("replay_heavy_90d_reference_backfill", |b| {
        let s = greener_bench::scenarios::dispatch_heavy_90d(greener_bench::seeds::WORLD)
            .with_backfill(greener_core::scenario::BackfillPath::Reference);
        b.iter(|| black_box(SimDriver::run(&s)))
    });
    // Bursty arrivals: deep queues that flood in spikes and drain against
    // completions — the worst case for backfill's candidate search.
    g.bench_function("dispatch_burst_7d", |b| {
        let s = greener_bench::scenarios::dispatch_burst_7d(greener_bench::seeds::WORLD);
        b.iter(|| black_box(SimDriver::run(&s)))
    });
    g.finish();
}

fn bench_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("sweep");
    g.sample_size(10);
    // Parallel Monte-Carlo replication scaling (Rayon).
    for &n in &[4usize, 16] {
        g.bench_with_input(BenchmarkId::new("replicate_7d", n), &n, |b, &n| {
            b.iter(|| {
                black_box(greener_simkit::sweep::replicate(n, 5, |_, hub| {
                    let s = Scenario::quick(7, hub.root());
                    SimDriver::run(&s).jobs.completed
                }))
            })
        });
    }
    g.finish();
}

fn bench_forecast(c: &mut Criterion) {
    let series: Vec<f64> = (0..24 * 30)
        .map(|i| {
            0.06 + 0.02 * (i as f64 / 24.0 * std::f64::consts::TAU).sin()
                + 0.005 * ((i * 7919) % 17) as f64 / 17.0
        })
        .collect();
    let mut g = c.benchmark_group("forecast");
    for kind in [
        ForecasterKind::SeasonalNaive,
        ForecasterKind::HoltWinters,
        ForecasterKind::Ar,
    ] {
        g.bench_function(format!("{kind:?}_fit_forecast"), |b| {
            b.iter(|| {
                let mut m = kind.build(24);
                m.fit(black_box(&series));
                black_box(m.forecast(24))
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = engine;
    config = Criterion::default();
    targets = bench_des, bench_world, bench_sweep, bench_forecast
}
criterion_main!(engine);
