//! One Criterion bench per quantified ablation (E6–E14). Simulation-backed
//! experiments use short windows of the 1/10-scale world so `cargo bench`
//! stays tractable; the analytic experiments run at full fidelity.

use criterion::{criterion_group, criterion_main, Criterion};
use greener_core::ablations::*;
use greener_core::scenario::Scenario;
use std::hint::black_box;

fn small(days: usize) -> Scenario {
    let mut s = Scenario::two_year_small(greener_bench::seeds::WORLD);
    s.horizon_hours = days * 24;
    s
}

fn bench_sim_backed(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim-backed");
    g.sample_size(10);
    g.bench_function("e6_purchasing_30d", |b| {
        let s = small(30);
        b.iter(|| black_box(e6_purchasing(&s)))
    });
    g.bench_function("e7_powercaps_14d_x3", |b| {
        let s = small(14);
        b.iter(|| black_box(e7_powercaps(&s, &[125.0, 175.0, 250.0])))
    });
    g.bench_function("e10_stress_14d", |b| {
        let mut s = small(14);
        s.start = greener_simkit::calendar::CalDate::new(2020, 7, 1);
        b.iter(|| black_box(e10_stress(&s)))
    });
    g.bench_function("e11_forecast_45d", |b| {
        let s = small(45);
        b.iter(|| black_box(e11_forecast(&s)))
    });
    g.bench_function("e12_restructure_60d", |b| {
        let s = small(60);
        b.iter(|| black_box(e12_restructure(&s)))
    });
    g.finish();
}

fn bench_analytic(c: &mut Criterion) {
    c.bench_function("e8_two_part_mechanism", |b| {
        b.iter(|| black_box(e8_mechanism(greener_bench::seeds::MECHANISM)))
    });
    c.bench_function("e9_adverse_selection", |b| {
        b.iter(|| black_box(e9_adverse_selection(greener_bench::seeds::MECHANISM)))
    });
    c.bench_function("e13_inference_fleet", |b| {
        b.iter(|| black_box(e13_inference(512, 64)))
    });
    c.bench_function("e14_variance", |b| {
        b.iter(|| black_box(e14_variance(1.0e6)))
    });
}

criterion_group! {
    name = ablations;
    config = Criterion::default();
    targets = bench_sim_backed, bench_analytic
}
criterion_main!(ablations);
