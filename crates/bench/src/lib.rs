//! # greener-bench
//!
//! Benchmarks and the `repro` binary for the `greener` workspace.
//!
//! * `cargo run --release -p greener-bench --bin repro` regenerates every
//!   figure and table of the paper (F1–F5, T1) and every quantified
//!   ablation (E6–E14), printing the same rows/series the paper reports.
//! * `cargo bench` measures the simulation engine (DES throughput, sweep
//!   scaling, forecaster fits) and regenerates each artifact under
//!   Criterion timing.

/// Standard seeds used by the benches and the repro binary so their outputs
/// are comparable across runs.
pub mod seeds {
    /// The flagship two-year world.
    pub const WORLD: u64 = 20220101;
    /// Mechanism experiments.
    pub const MECHANISM: u64 = 7;
}
