//! # greener-bench
//!
//! Benchmarks and the `repro` binary for the `greener` workspace.
//!
//! * `cargo run --release -p greener-bench --bin repro` regenerates every
//!   figure and table of the paper (F1–F5, T1) and every quantified
//!   ablation (E6–E14), printing the same rows/series the paper reports.
//! * `cargo bench` measures the simulation engine (DES throughput, sweep
//!   scaling, forecaster fits) and regenerates each artifact under
//!   Criterion timing.
//! * `cargo run --release -p greener-bench --bin perfjson -- --profile`
//!   adds the driver's self-profiling pass: per-phase replay wall time
//!   (signal build / policy dispatch / decision apply / tick cooling) and
//!   loop counters (fast-path dispatches, backfill visits) per scenario,
//!   recorded in `BENCH_engine.json` — the instrument ROADMAP's
//!   "profile before picking" rule refers to. See `greener_core::profile`.
//!
//! ## `BENCH_engine.json` profile schema
//!
//! Each replay scenario's `"profile"` object (present with `--profile`)
//! contains, in order:
//!
//! * `total_ns` — whole-replay wall time for the profiled pass;
//! * one `<phase>_ns` per top-level [`greener_core::profile::ProfilePhase`]
//!   (`signal_build`, `policy_dispatch`, `decision_apply`, `tick_cooling`,
//!   `tick_ledger`) — disjoint slices of the replay loop;
//! * `unattributed_ns` — `total` minus the top-level phases (completion
//!   handling, event-queue pops, probe wiring);
//! * one `<sub_phase>_ns` per
//!   [`greener_core::profile::ProfileSubPhase`] (`event_pop`,
//!   `apply_alloc`, `apply_slab`, `apply_completions`, `apply_probes`,
//!   `apply_schedule`, `tick_settle`). Sub-phases **overlap** the
//!   top-level split: starts are measured inside `decision_apply`,
//!   finishes inside the unattributed remainder, and `tick_settle` inside
//!   `tick_cooling` — so they attribute interiors and must not be summed
//!   with the phases;
//! * one field per [`greener_core::profile::ProfileCounter`] — loop
//!   counts (events, decisions, dispatch calls, backfill visits, …) plus
//!   the fast-path proof counters `fast_apply_events` (SoA apply slab
//!   touches: one per start + one per finish), `backfill_cache_hits` and
//!   `backfill_visits_saved` (reject-memo engagement; see
//!   `greener_sched::waitq` for the invalidation rules).

/// Standard seeds used by the benches and the repro binary so their outputs
/// are comparable across runs.
pub mod seeds {
    /// The flagship two-year world. (Re-picked from 20220101 when the
    /// workspace moved to the vendored xoshiro256++ RNG stream, and again
    /// from 20220107 when trace synthesis moved to sharded indexed streams
    /// — an intentional workload-realization change. This seed's
    /// realization reproduces every published figure shape; see
    /// `tests/figures.rs`.)
    pub const WORLD: u64 = 20220106;
    /// Mechanism experiments.
    pub const MECHANISM: u64 = 7;
}

/// Canonical benchmark scenarios shared by `cargo bench` and the
/// `perfjson` snapshot binary (so their numbers are comparable).
pub mod scenarios {
    use greener_core::scenario::Scenario;

    /// The saturated-queue scenario: a 32-GPU cluster under ~6 arrivals/hour
    /// for 90 days. The waiting queue grows into the thousands, so every
    /// dispatch decision exercises the queue-application and signal-building
    /// paths as hard as the engine allows.
    pub fn dispatch_heavy_90d(seed: u64) -> Scenario {
        let mut s = Scenario::quick(90, seed);
        s.name = "dispatch-heavy-90d".into();
        s.trace.demand.base_rate_per_hour = 6.0;
        s
    }

    /// The bursty-arrival scenario: one week on a 32-GPU cluster with a
    /// violent diurnal swing (near-silent nights, ~20×-base afternoon
    /// spikes). Each burst floods a deep waiting queue that the scheduler
    /// then drains against a trickle of completions — the worst case for
    /// backfill's candidate search, which is exactly what the fit-indexed
    /// waiting queue is supposed to keep cheap. `perfjson` also logs the
    /// queue-depth stats so the stress level is visible in the snapshot.
    pub fn dispatch_burst_7d(seed: u64) -> Scenario {
        let mut s = Scenario::quick(7, seed);
        s.name = "dispatch-burst-7d".into();
        s.trace.demand.base_rate_per_hour = 10.0;
        s.trace.demand.diurnal_fraction = 0.98;
        s.trace.demand.surge_mult = 2.0;
        s
    }
}
