//! # greener-bench
//!
//! Benchmarks and the `repro` binary for the `greener` workspace.
//!
//! * `cargo run --release -p greener-bench --bin repro` regenerates every
//!   figure and table of the paper (F1–F5, T1) and every quantified
//!   ablation (E6–E14), printing the same rows/series the paper reports.
//! * `cargo bench` measures the simulation engine (DES throughput, sweep
//!   scaling, forecaster fits) and regenerates each artifact under
//!   Criterion timing.
//! * `cargo run --release -p greener-bench --bin perfjson -- --profile`
//!   adds the driver's self-profiling pass: per-phase replay wall time
//!   (signal build / policy dispatch / decision apply / tick cooling) and
//!   loop counters (fast-path dispatches, backfill visits) per scenario,
//!   recorded in `BENCH_engine.json` — the instrument ROADMAP's
//!   "profile before picking" rule refers to. See `greener_core::profile`.
//!
//! ## `BENCH_engine.json` profile schema
//!
//! Each replay scenario's `"profile"` object (present with `--profile`)
//! contains, in order:
//!
//! * `total_ns` — whole-replay wall time for the profiled pass;
//! * one `<phase>_ns` per top-level [`greener_core::profile::ProfilePhase`]
//!   (`signal_build`, `policy_dispatch`, `decision_apply`, `tick_cooling`,
//!   `tick_ledger`) — disjoint slices of the replay loop;
//! * `unattributed_ns` — `total` minus the top-level phases (completion
//!   handling, event-queue pops, probe wiring);
//! * one `<sub_phase>_ns` per
//!   [`greener_core::profile::ProfileSubPhase`] (`event_pop`,
//!   `apply_alloc`, `apply_slab`, `apply_completions`, `apply_probes`,
//!   `apply_schedule`, `tick_settle`). Sub-phases **overlap** the
//!   top-level split: starts are measured inside `decision_apply`,
//!   finishes inside the unattributed remainder, and `tick_settle` inside
//!   `tick_cooling` — so they attribute interiors and must not be summed
//!   with the phases;
//! * one field per [`greener_core::profile::ProfileCounter`] — loop
//!   counts (events, decisions, dispatch calls, backfill visits, …) plus
//!   the fast-path proof counters `fast_apply_events` (SoA apply slab
//!   touches: one per start + one per finish), `backfill_cache_hits` and
//!   `backfill_visits_saved` (reject-memo engagement; see
//!   `greener_sched::waitq` for the invalidation rules).

/// The `perfjson` command line: a strict flag parser.
///
/// Strict on purpose — `perfjson` used to scan with
/// `args.iter().any(|a| a == "--smoke")`, so a typo like `--proflie`
/// silently ran the wrong benchmark shape and the snapshot looked valid.
/// Unknown flags now fail with the usage text.
pub mod cli {
    /// Parsed `perfjson` flags.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct PerfArgs {
        /// One timed run per scenario (CI smoke; implies stdout-only,
        /// since single-run timings must never overwrite the curated
        /// `BENCH_engine.json` trajectory).
        pub smoke: bool,
        /// Attach the replay phase split (`SimDriver::run_profiled`).
        pub profile: bool,
        /// Print to stdout instead of writing `BENCH_engine.json`.
        pub to_stdout: bool,
    }

    /// Usage text printed for `--help` and appended to unknown-flag errors.
    pub const USAGE: &str = "usage: perfjson [--smoke] [--profile] [-]\n\
        \n\
        \x20 --smoke    one timed run per scenario (CI); implies stdout-only\n\
        \x20 --profile  attach the replay phase split and loop counters\n\
        \x20 -          print to stdout instead of writing BENCH_engine.json\n\
        \x20 --help     show this message\n";

    /// Parse the argument list (without the program name).
    ///
    /// Returns `Ok(None)` for `--help`/`-h`, `Err` (with the usage text)
    /// for any flag not in the table.
    pub fn parse<S: AsRef<str>>(args: &[S]) -> Result<Option<PerfArgs>, String> {
        let mut parsed = PerfArgs {
            smoke: false,
            profile: false,
            to_stdout: false,
        };
        for arg in args {
            match arg.as_ref() {
                "--smoke" => parsed.smoke = true,
                "--profile" => parsed.profile = true,
                "-" => parsed.to_stdout = true,
                "--help" | "-h" => return Ok(None),
                unknown => return Err(format!("unknown flag `{unknown}`\n{USAGE}")),
            }
        }
        if parsed.smoke {
            parsed.to_stdout = true;
        }
        Ok(Some(parsed))
    }

    /// A parsed `perfjson` invocation: the classic measurement mode, the
    /// worker modes spawned by
    /// `greener_core::campaign::process::ProcessBackend` (campaign and
    /// fleet plans), or the supervised drivers for either plan kind.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum Command {
        /// Measurement lanes (the default, no subcommand).
        Perf(PerfArgs),
        /// `perfjson campaign-worker …`: run one campaign shard and
        /// publish its artifact + marker into the artifact directory.
        Worker(WorkerArgs),
        /// `perfjson campaign …`: supervise a whole campaign
        /// process-per-shard.
        Campaign(CampaignArgs),
        /// `perfjson fleet-campaign-worker …`: run one **fleet** shard
        /// (the manifest is a fleet manifest) and publish its artifact +
        /// marker.
        FleetWorker(WorkerArgs),
        /// `perfjson fleet-campaign …`: supervise a whole fleet sweep
        /// process-per-shard — same supervision stack, fleet plan.
        FleetCampaign(CampaignArgs),
    }

    /// `perfjson campaign-worker` arguments (all required; the supervisor
    /// always passes the full set).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct WorkerArgs {
        /// Manifest file to re-expand.
        pub manifest: String,
        /// Shard ordinal to run.
        pub shard: usize,
        /// Total shard count.
        pub of: usize,
        /// Artifact directory to publish into.
        pub dir: String,
    }

    /// `perfjson campaign` arguments.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct CampaignArgs {
        /// Manifest file describing the campaign.
        pub manifest: String,
        /// Shard count (workers spawned).
        pub shards: usize,
        /// Artifact directory.
        pub dir: String,
        /// Per-shard wall-clock budget, milliseconds.
        pub timeout_ms: u64,
        /// Maximum attempts per shard.
        pub max_attempts: u32,
        /// Also run the campaign in-process and compare the merged
        /// reports byte for byte.
        pub check: bool,
        /// Skip shards with valid existing artifacts (`--no-resume`
        /// clears it).
        pub resume: bool,
    }

    /// Usage text for the `campaign-worker` subcommand.
    pub const WORKER_USAGE: &str = "usage: perfjson campaign-worker --manifest <file> \
        --shard <i> --of <k> --dir <dir>\n\
        \n\
        Runs one campaign shard in-process and publishes its artifact and\n\
        completion marker into <dir>. Honors GREENER_FAULT (see\n\
        greener_core::campaign::process::FaultPlan) and\n\
        GREENER_WORKER_ATTEMPT for deterministic fault injection.\n";

    /// Usage text for the `campaign` subcommand.
    pub const CAMPAIGN_USAGE: &str = "usage: perfjson campaign --manifest <file> \
        --shards <k> --dir <dir>\n\
        \x20        [--timeout-ms <ms>] [--max-attempts <n>] [--check] [--no-resume]\n\
        \n\
        \x20 --manifest      campaign manifest file\n\
        \x20 --shards        shard count (one worker process per shard)\n\
        \x20 --dir           artifact directory (manifest copy, shard artifacts, markers)\n\
        \x20 --timeout-ms    per-shard wall-clock budget (default 120000)\n\
        \x20 --max-attempts  attempts per shard before giving up (default 3)\n\
        \x20 --check         also run in-process and compare the merged reports\n\
        \x20 --no-resume     re-run every shard even if a valid artifact exists\n";

    /// Usage text for the `fleet-campaign-worker` subcommand.
    pub const FLEET_WORKER_USAGE: &str = "usage: perfjson fleet-campaign-worker \
        --manifest <file> --shard <i> --of <k> --dir <dir>\n\
        \n\
        Runs one fleet-plan shard in-process and publishes its artifact and\n\
        completion marker into <dir>. The manifest is a fleet manifest\n\
        (greener_core::fleet::FleetManifest). Honors GREENER_FAULT and\n\
        GREENER_WORKER_ATTEMPT exactly like campaign-worker.\n";

    /// Usage text for the `fleet-campaign` subcommand.
    pub const FLEET_CAMPAIGN_USAGE: &str = "usage: perfjson fleet-campaign --manifest <file> \
        --shards <k> --dir <dir>\n\
        \x20        [--timeout-ms <ms>] [--max-attempts <n>] [--check] [--no-resume]\n\
        \n\
        Supervises a fleet sweep process-per-shard (workers run in\n\
        fleet-campaign-worker mode). Flags are identical to `campaign`;\n\
        --manifest names a fleet manifest.\n";

    /// Take the value following flag `flag` from the iterator.
    fn take_value<'a, S: AsRef<str>>(
        flag: &str,
        it: &mut std::slice::Iter<'a, S>,
        usage: &str,
    ) -> Result<&'a str, String> {
        match it.next() {
            Some(v) => Ok(v.as_ref()),
            None => Err(format!("flag `{flag}` needs a value\n{usage}")),
        }
    }

    fn parse_worker<S: AsRef<str>>(
        args: &[S],
        mode: &str,
        usage: &str,
    ) -> Result<Option<WorkerArgs>, String> {
        let (mut manifest, mut shard, mut of, mut dir) = (None, None, None, None);
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_ref() {
                "--manifest" => {
                    manifest = Some(take_value("--manifest", &mut it, usage)?.to_string())
                }
                "--shard" => {
                    let v = take_value("--shard", &mut it, usage)?;
                    shard = Some(
                        v.parse::<usize>()
                            .map_err(|_| format!("bad --shard `{v}`\n{usage}"))?,
                    );
                }
                "--of" => {
                    let v = take_value("--of", &mut it, usage)?;
                    of = Some(
                        v.parse::<usize>()
                            .map_err(|_| format!("bad --of `{v}`\n{usage}"))?,
                    );
                }
                "--dir" => dir = Some(take_value("--dir", &mut it, usage)?.to_string()),
                "--help" | "-h" => return Ok(None),
                unknown => return Err(format!("unknown flag `{unknown}`\n{usage}")),
            }
        }
        match (manifest, shard, of, dir) {
            (Some(manifest), Some(shard), Some(of), Some(dir)) => Ok(Some(WorkerArgs {
                manifest,
                shard,
                of,
                dir,
            })),
            _ => Err(format!(
                "{mode} needs --manifest, --shard, --of and --dir\n{usage}"
            )),
        }
    }

    fn parse_campaign<S: AsRef<str>>(
        args: &[S],
        mode: &str,
        usage: &str,
    ) -> Result<Option<CampaignArgs>, String> {
        let (mut manifest, mut shards, mut dir) = (None, None, None);
        let (mut timeout_ms, mut max_attempts) = (120_000u64, 3u32);
        let (mut check, mut resume) = (false, true);
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_ref() {
                "--manifest" => {
                    manifest = Some(take_value("--manifest", &mut it, usage)?.to_string())
                }
                "--shards" => {
                    let v = take_value("--shards", &mut it, usage)?;
                    let k = v
                        .parse::<usize>()
                        .map_err(|_| format!("bad --shards `{v}`\n{usage}"))?;
                    if k == 0 {
                        return Err(format!("--shards must be positive\n{usage}"));
                    }
                    shards = Some(k);
                }
                "--dir" => dir = Some(take_value("--dir", &mut it, usage)?.to_string()),
                "--timeout-ms" => {
                    let v = take_value("--timeout-ms", &mut it, usage)?;
                    timeout_ms = v
                        .parse::<u64>()
                        .map_err(|_| format!("bad --timeout-ms `{v}`\n{usage}"))?;
                }
                "--max-attempts" => {
                    let v = take_value("--max-attempts", &mut it, usage)?;
                    max_attempts = v
                        .parse::<u32>()
                        .map_err(|_| format!("bad --max-attempts `{v}`\n{usage}"))?;
                }
                "--check" => check = true,
                "--no-resume" => resume = false,
                "--help" | "-h" => return Ok(None),
                unknown => return Err(format!("unknown flag `{unknown}`\n{usage}")),
            }
        }
        match (manifest, shards, dir) {
            (Some(manifest), Some(shards), Some(dir)) => Ok(Some(CampaignArgs {
                manifest,
                shards,
                dir,
                timeout_ms,
                max_attempts,
                check,
                resume,
            })),
            _ => Err(format!(
                "{mode} needs --manifest, --shards and --dir\n{usage}"
            )),
        }
    }

    /// Parse a full `perfjson` argument list, dispatching on an optional
    /// leading subcommand (`campaign-worker`, `campaign`,
    /// `fleet-campaign-worker`, `fleet-campaign`); anything else goes
    /// through the classic strict flag parser. `Ok(None)` means help was
    /// requested (the appropriate usage text was chosen by the caller's
    /// subcommand).
    pub fn parse_command<S: AsRef<str>>(args: &[S]) -> Result<Option<Command>, String> {
        match args.first().map(AsRef::as_ref) {
            Some("campaign-worker") => {
                Ok(parse_worker(&args[1..], "campaign-worker", WORKER_USAGE)?.map(Command::Worker))
            }
            Some("campaign") => {
                Ok(parse_campaign(&args[1..], "campaign", CAMPAIGN_USAGE)?.map(Command::Campaign))
            }
            Some("fleet-campaign-worker") => {
                Ok(
                    parse_worker(&args[1..], "fleet-campaign-worker", FLEET_WORKER_USAGE)?
                        .map(Command::FleetWorker),
                )
            }
            Some("fleet-campaign") => {
                Ok(
                    parse_campaign(&args[1..], "fleet-campaign", FLEET_CAMPAIGN_USAGE)?
                        .map(Command::FleetCampaign),
                )
            }
            _ => Ok(parse(args)?.map(Command::Perf)),
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn known_flags_parse() {
            let a = parse(&["--smoke", "--profile"]).unwrap().unwrap();
            assert!(a.smoke && a.profile && a.to_stdout, "smoke implies stdout");
            let a = parse(&["--profile"]).unwrap().unwrap();
            assert!(a.profile && !a.smoke && !a.to_stdout);
            let a = parse(&["-"]).unwrap().unwrap();
            assert!(a.to_stdout && !a.smoke && !a.profile);
            let a = parse::<&str>(&[]).unwrap().unwrap();
            assert!(!a.smoke && !a.profile && !a.to_stdout);
        }

        #[test]
        fn typos_are_rejected_with_usage() {
            for bad in ["--proflie", "--smok", "--", "smoke", "--smoke=1"] {
                let e = parse(&[bad]).unwrap_err();
                assert!(e.contains(bad), "{e}");
                assert!(e.contains("usage:"), "{e}");
            }
            // A typo anywhere in the list fails, even after valid flags.
            assert!(parse(&["--smoke", "--proflie"]).is_err());
        }

        #[test]
        fn help_short_circuits() {
            assert_eq!(parse(&["--help"]).unwrap(), None);
            assert_eq!(parse(&["-h"]).unwrap(), None);
            // …even alongside other flags.
            assert_eq!(parse(&["--smoke", "--help"]).unwrap(), None);
        }

        #[test]
        fn command_dispatches_on_leading_subcommand() {
            // No subcommand → classic perf flags.
            match parse_command(&["--smoke"]).unwrap().unwrap() {
                Command::Perf(a) => assert!(a.smoke),
                other => panic!("expected Perf, got {other:?}"),
            }
            // Worker: all four flags required, any order.
            let cmd = parse_command(&[
                "campaign-worker",
                "--shard",
                "2",
                "--of",
                "5",
                "--manifest",
                "m.campaign",
                "--dir",
                "art",
            ])
            .unwrap()
            .unwrap();
            assert_eq!(
                cmd,
                Command::Worker(WorkerArgs {
                    manifest: "m.campaign".into(),
                    shard: 2,
                    of: 5,
                    dir: "art".into(),
                })
            );
            // Campaign: defaults fill in.
            let cmd = parse_command(&[
                "campaign",
                "--manifest",
                "m.campaign",
                "--shards",
                "4",
                "--dir",
                "art",
                "--check",
            ])
            .unwrap()
            .unwrap();
            match cmd {
                Command::Campaign(a) => {
                    assert_eq!((a.shards, a.timeout_ms, a.max_attempts), (4, 120_000, 3));
                    assert!(a.check && a.resume);
                }
                other => panic!("expected Campaign, got {other:?}"),
            }
        }

        #[test]
        fn fleet_subcommands_parse_like_their_campaign_twins() {
            // fleet-campaign-worker shares WorkerArgs with campaign-worker.
            let cmd = parse_command(&[
                "fleet-campaign-worker",
                "--manifest",
                "m.fleet",
                "--shard",
                "1",
                "--of",
                "3",
                "--dir",
                "art",
            ])
            .unwrap()
            .unwrap();
            assert_eq!(
                cmd,
                Command::FleetWorker(WorkerArgs {
                    manifest: "m.fleet".into(),
                    shard: 1,
                    of: 3,
                    dir: "art".into(),
                })
            );
            // fleet-campaign shares CampaignArgs (defaults included).
            match parse_command(&[
                "fleet-campaign",
                "--manifest",
                "m.fleet",
                "--shards",
                "4",
                "--dir",
                "art",
                "--no-resume",
            ])
            .unwrap()
            .unwrap()
            {
                Command::FleetCampaign(a) => {
                    assert_eq!((a.shards, a.timeout_ms, a.max_attempts), (4, 120_000, 3));
                    assert!(!a.resume && !a.check);
                }
                other => panic!("expected FleetCampaign, got {other:?}"),
            }
            // Errors carry the fleet usage text, not the campaign one.
            let e = parse_command(&["fleet-campaign-worker", "--shard", "0"]).unwrap_err();
            assert!(e.contains("fleet-campaign-worker needs --manifest"), "{e}");
            assert!(e.contains("perfjson fleet-campaign-worker"), "{e}");
            let e = parse_command(&["fleet-campaign", "--manifest", "m"]).unwrap_err();
            assert!(
                e.contains("fleet-campaign needs --manifest, --shards"),
                "{e}"
            );
            assert!(e.contains("perfjson fleet-campaign "), "{e}");
            // Help short-circuits.
            assert_eq!(parse_command(&["fleet-campaign", "--help"]).unwrap(), None);
            assert_eq!(
                parse_command(&["fleet-campaign-worker", "-h"]).unwrap(),
                None
            );
        }

        #[test]
        fn subcommands_reject_bad_or_missing_args() {
            // Missing required flags.
            let e = parse_command(&["campaign-worker", "--shard", "0"]).unwrap_err();
            assert!(e.contains("needs --manifest"), "{e}");
            let e = parse_command(&["campaign", "--manifest", "m"]).unwrap_err();
            assert!(e.contains("needs --manifest, --shards"), "{e}");
            // Unknown and malformed flags.
            assert!(parse_command(&["campaign", "--shard", "1"]).is_err());
            assert!(parse_command(&["campaign-worker", "--shard", "x"]).is_err());
            assert!(
                parse_command(&["campaign", "--manifest", "m", "--shards", "0", "--dir", "d"])
                    .is_err()
            );
            // Dangling value.
            let e = parse_command(&["campaign", "--manifest"]).unwrap_err();
            assert!(e.contains("needs a value"), "{e}");
            // --no-resume clears resume.
            match parse_command(&[
                "campaign",
                "--manifest",
                "m",
                "--shards",
                "2",
                "--dir",
                "d",
                "--no-resume",
            ])
            .unwrap()
            .unwrap()
            {
                Command::Campaign(a) => assert!(!a.resume && !a.check),
                other => panic!("{other:?}"),
            }
            // Help short-circuits inside subcommands too.
            assert_eq!(parse_command(&["campaign", "--help"]).unwrap(), None);
            assert_eq!(parse_command(&["campaign-worker", "-h"]).unwrap(), None);
        }
    }
}

/// Standard seeds used by the benches and the repro binary so their outputs
/// are comparable across runs.
pub mod seeds {
    /// The flagship two-year world. (Re-picked from 20220101 when the
    /// workspace moved to the vendored xoshiro256++ RNG stream, and again
    /// from 20220107 when trace synthesis moved to sharded indexed streams
    /// — an intentional workload-realization change. This seed's
    /// realization reproduces every published figure shape; see
    /// `tests/figures.rs`.)
    pub const WORLD: u64 = 20220106;
    /// Mechanism experiments.
    pub const MECHANISM: u64 = 7;
}

/// Canonical benchmark scenarios shared by `cargo bench` and the
/// `perfjson` snapshot binary (so their numbers are comparable).
pub mod scenarios {
    use greener_core::scenario::Scenario;

    /// The saturated-queue scenario: a 32-GPU cluster under ~6 arrivals/hour
    /// for 90 days. The waiting queue grows into the thousands, so every
    /// dispatch decision exercises the queue-application and signal-building
    /// paths as hard as the engine allows.
    pub fn dispatch_heavy_90d(seed: u64) -> Scenario {
        let mut s = Scenario::quick(90, seed);
        s.name = "dispatch-heavy-90d".into();
        s.trace.demand.base_rate_per_hour = 6.0;
        s
    }

    /// The bursty-arrival scenario: one week on a 32-GPU cluster with a
    /// violent diurnal swing (near-silent nights, ~20×-base afternoon
    /// spikes). Each burst floods a deep waiting queue that the scheduler
    /// then drains against a trickle of completions — the worst case for
    /// backfill's candidate search, which is exactly what the fit-indexed
    /// waiting queue is supposed to keep cheap. `perfjson` also logs the
    /// queue-depth stats so the stress level is visible in the snapshot.
    pub fn dispatch_burst_7d(seed: u64) -> Scenario {
        let mut s = Scenario::quick(7, seed);
        s.name = "dispatch-burst-7d".into();
        s.trace.demand.base_rate_per_hour = 10.0;
        s.trace.demand.diurnal_fraction = 0.98;
        s.trace.demand.surge_mult = 2.0;
        s
    }

    /// The `fleet_small` fleet: three regionally-varied sites derived
    /// from the 30-day quick world (`FleetScenario::spread`, so site 0 is
    /// the base verbatim and sites 1–2 get shifted wind/solar/fossil
    /// grids and warming offsets), sharing one arrival trace. The
    /// `perfjson` fleet lane runs it under two routing policies and
    /// checks that carbon totals differ across policies while each
    /// policy's report stays byte-identical across thread counts.
    pub fn fleet_small(seed: u64) -> greener_core::fleet::FleetScenario {
        let mut fleet = greener_core::fleet::FleetScenario::spread(Scenario::quick(30, seed), 3);
        fleet.name = "fleet_small".into();
        fleet
    }

    /// The `campaign_small` manifest: a **policy-only** campaign (policy ×
    /// SLO threshold, one seed) over the small two-year world. Every axis
    /// is replay-side, so all 12 cells share one world — the shape where
    /// world-reuse caching pays most, and the lane `perfjson` reports
    /// runs/sec on with and without reuse.
    pub fn campaign_small(seed: u64) -> greener_core::campaign::CampaignManifest {
        use greener_core::campaign::{AxisValue, CampaignManifest, Knob};
        use greener_sched::PolicyKind;
        CampaignManifest::new("campaign_small", Scenario::two_year_small(seed))
            .with_axis(
                Knob::Policy,
                vec![
                    AxisValue::Policy(PolicyKind::Fcfs),
                    AxisValue::Policy(PolicyKind::EasyBackfill),
                    AxisValue::Policy(PolicyKind::StaticCap { cap_w: 160.0 }),
                    AxisValue::Policy(PolicyKind::CarbonAware {
                        green_threshold: 0.06,
                    }),
                ],
            )
            .with_axis(
                Knob::SloWaitHours,
                vec![
                    AxisValue::Real(12.0),
                    AxisValue::Real(24.0),
                    AxisValue::Real(48.0),
                ],
            )
    }
}
