//! # greener-bench
//!
//! Benchmarks and the `repro` binary for the `greener` workspace.
//!
//! * `cargo run --release -p greener-bench --bin repro` regenerates every
//!   figure and table of the paper (F1–F5, T1) and every quantified
//!   ablation (E6–E14), printing the same rows/series the paper reports.
//! * `cargo bench` measures the simulation engine (DES throughput, sweep
//!   scaling, forecaster fits) and regenerates each artifact under
//!   Criterion timing.
//! * `cargo run --release -p greener-bench --bin perfjson -- --profile`
//!   adds the driver's self-profiling pass: per-phase replay wall time
//!   (signal build / policy dispatch / decision apply / tick cooling) and
//!   loop counters (fast-path dispatches, backfill visits) per scenario,
//!   recorded in `BENCH_engine.json` — the instrument ROADMAP's
//!   "profile before picking" rule refers to. See `greener_core::profile`.
//!
//! ## `BENCH_engine.json` profile schema
//!
//! Each replay scenario's `"profile"` object (present with `--profile`)
//! contains, in order:
//!
//! * `total_ns` — whole-replay wall time for the profiled pass;
//! * one `<phase>_ns` per top-level [`greener_core::profile::ProfilePhase`]
//!   (`signal_build`, `policy_dispatch`, `decision_apply`, `tick_cooling`,
//!   `tick_ledger`) — disjoint slices of the replay loop;
//! * `unattributed_ns` — `total` minus the top-level phases (completion
//!   handling, event-queue pops, probe wiring);
//! * one `<sub_phase>_ns` per
//!   [`greener_core::profile::ProfileSubPhase`] (`event_pop`,
//!   `apply_alloc`, `apply_slab`, `apply_completions`, `apply_probes`,
//!   `apply_schedule`, `tick_settle`). Sub-phases **overlap** the
//!   top-level split: starts are measured inside `decision_apply`,
//!   finishes inside the unattributed remainder, and `tick_settle` inside
//!   `tick_cooling` — so they attribute interiors and must not be summed
//!   with the phases;
//! * one field per [`greener_core::profile::ProfileCounter`] — loop
//!   counts (events, decisions, dispatch calls, backfill visits, …) plus
//!   the fast-path proof counters `fast_apply_events` (SoA apply slab
//!   touches: one per start + one per finish), `backfill_cache_hits` and
//!   `backfill_visits_saved` (reject-memo engagement; see
//!   `greener_sched::waitq` for the invalidation rules).

/// The `perfjson` command line: a strict flag parser.
///
/// Strict on purpose — `perfjson` used to scan with
/// `args.iter().any(|a| a == "--smoke")`, so a typo like `--proflie`
/// silently ran the wrong benchmark shape and the snapshot looked valid.
/// Unknown flags now fail with the usage text.
pub mod cli {
    /// Parsed `perfjson` flags.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct PerfArgs {
        /// One timed run per scenario (CI smoke; implies stdout-only,
        /// since single-run timings must never overwrite the curated
        /// `BENCH_engine.json` trajectory).
        pub smoke: bool,
        /// Attach the replay phase split (`SimDriver::run_profiled`).
        pub profile: bool,
        /// Print to stdout instead of writing `BENCH_engine.json`.
        pub to_stdout: bool,
    }

    /// Usage text printed for `--help` and appended to unknown-flag errors.
    pub const USAGE: &str = "usage: perfjson [--smoke] [--profile] [-]\n\
        \n\
        \x20 --smoke    one timed run per scenario (CI); implies stdout-only\n\
        \x20 --profile  attach the replay phase split and loop counters\n\
        \x20 -          print to stdout instead of writing BENCH_engine.json\n\
        \x20 --help     show this message\n";

    /// Parse the argument list (without the program name).
    ///
    /// Returns `Ok(None)` for `--help`/`-h`, `Err` (with the usage text)
    /// for any flag not in the table.
    pub fn parse<S: AsRef<str>>(args: &[S]) -> Result<Option<PerfArgs>, String> {
        let mut parsed = PerfArgs {
            smoke: false,
            profile: false,
            to_stdout: false,
        };
        for arg in args {
            match arg.as_ref() {
                "--smoke" => parsed.smoke = true,
                "--profile" => parsed.profile = true,
                "-" => parsed.to_stdout = true,
                "--help" | "-h" => return Ok(None),
                unknown => return Err(format!("unknown flag `{unknown}`\n{USAGE}")),
            }
        }
        if parsed.smoke {
            parsed.to_stdout = true;
        }
        Ok(Some(parsed))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn known_flags_parse() {
            let a = parse(&["--smoke", "--profile"]).unwrap().unwrap();
            assert!(a.smoke && a.profile && a.to_stdout, "smoke implies stdout");
            let a = parse(&["--profile"]).unwrap().unwrap();
            assert!(a.profile && !a.smoke && !a.to_stdout);
            let a = parse(&["-"]).unwrap().unwrap();
            assert!(a.to_stdout && !a.smoke && !a.profile);
            let a = parse::<&str>(&[]).unwrap().unwrap();
            assert!(!a.smoke && !a.profile && !a.to_stdout);
        }

        #[test]
        fn typos_are_rejected_with_usage() {
            for bad in ["--proflie", "--smok", "--", "smoke", "--smoke=1"] {
                let e = parse(&[bad]).unwrap_err();
                assert!(e.contains(bad), "{e}");
                assert!(e.contains("usage:"), "{e}");
            }
            // A typo anywhere in the list fails, even after valid flags.
            assert!(parse(&["--smoke", "--proflie"]).is_err());
        }

        #[test]
        fn help_short_circuits() {
            assert_eq!(parse(&["--help"]).unwrap(), None);
            assert_eq!(parse(&["-h"]).unwrap(), None);
            // …even alongside other flags.
            assert_eq!(parse(&["--smoke", "--help"]).unwrap(), None);
        }
    }
}

/// Standard seeds used by the benches and the repro binary so their outputs
/// are comparable across runs.
pub mod seeds {
    /// The flagship two-year world. (Re-picked from 20220101 when the
    /// workspace moved to the vendored xoshiro256++ RNG stream, and again
    /// from 20220107 when trace synthesis moved to sharded indexed streams
    /// — an intentional workload-realization change. This seed's
    /// realization reproduces every published figure shape; see
    /// `tests/figures.rs`.)
    pub const WORLD: u64 = 20220106;
    /// Mechanism experiments.
    pub const MECHANISM: u64 = 7;
}

/// Canonical benchmark scenarios shared by `cargo bench` and the
/// `perfjson` snapshot binary (so their numbers are comparable).
pub mod scenarios {
    use greener_core::scenario::Scenario;

    /// The saturated-queue scenario: a 32-GPU cluster under ~6 arrivals/hour
    /// for 90 days. The waiting queue grows into the thousands, so every
    /// dispatch decision exercises the queue-application and signal-building
    /// paths as hard as the engine allows.
    pub fn dispatch_heavy_90d(seed: u64) -> Scenario {
        let mut s = Scenario::quick(90, seed);
        s.name = "dispatch-heavy-90d".into();
        s.trace.demand.base_rate_per_hour = 6.0;
        s
    }

    /// The bursty-arrival scenario: one week on a 32-GPU cluster with a
    /// violent diurnal swing (near-silent nights, ~20×-base afternoon
    /// spikes). Each burst floods a deep waiting queue that the scheduler
    /// then drains against a trickle of completions — the worst case for
    /// backfill's candidate search, which is exactly what the fit-indexed
    /// waiting queue is supposed to keep cheap. `perfjson` also logs the
    /// queue-depth stats so the stress level is visible in the snapshot.
    pub fn dispatch_burst_7d(seed: u64) -> Scenario {
        let mut s = Scenario::quick(7, seed);
        s.name = "dispatch-burst-7d".into();
        s.trace.demand.base_rate_per_hour = 10.0;
        s.trace.demand.diurnal_fraction = 0.98;
        s.trace.demand.surge_mult = 2.0;
        s
    }

    /// The `campaign_small` manifest: a **policy-only** campaign (policy ×
    /// SLO threshold, one seed) over the small two-year world. Every axis
    /// is replay-side, so all 12 cells share one world — the shape where
    /// world-reuse caching pays most, and the lane `perfjson` reports
    /// runs/sec on with and without reuse.
    pub fn campaign_small(seed: u64) -> greener_core::campaign::CampaignManifest {
        use greener_core::campaign::{AxisValue, CampaignManifest, Knob};
        use greener_sched::PolicyKind;
        CampaignManifest::new("campaign_small", Scenario::two_year_small(seed))
            .with_axis(
                Knob::Policy,
                vec![
                    AxisValue::Policy(PolicyKind::Fcfs),
                    AxisValue::Policy(PolicyKind::EasyBackfill),
                    AxisValue::Policy(PolicyKind::StaticCap { cap_w: 160.0 }),
                    AxisValue::Policy(PolicyKind::CarbonAware {
                        green_threshold: 0.06,
                    }),
                ],
            )
            .with_axis(
                Knob::SloWaitHours,
                vec![
                    AxisValue::Real(12.0),
                    AxisValue::Real(24.0),
                    AxisValue::Real(48.0),
                ],
            )
    }
}
