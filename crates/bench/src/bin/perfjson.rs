//! Emit a machine-readable engine-performance snapshot (`BENCH_engine.json`).
//!
//! ```sh
//! cargo run --release -p greener-bench --bin perfjson            # writes BENCH_engine.json
//! cargo run --release -p greener-bench --bin perfjson -- -       # prints to stdout only
//! ```
//!
//! Times the three canonical engine scenarios — `driver_quick_30d`,
//! `driver_small_2y` and the saturated-queue `dispatch_heavy_90d` — and
//! records runs/sec plus per-run wall time so future PRs have a perf
//! trajectory to compare against. JSON is hand-formatted (the vendored
//! serde stand-in has no serializer).

use greener_bench::scenarios::dispatch_heavy_90d;
use greener_core::driver::SimDriver;
use greener_core::scenario::Scenario;
use std::time::Instant;

struct Measurement {
    name: &'static str,
    runs: usize,
    secs_per_run: f64,
    completed_jobs: usize,
}

fn time_scenario(
    name: &'static str,
    s: &Scenario,
    min_runs: usize,
    budget_secs: f64,
) -> Measurement {
    // Warm-up run (also yields the job count for a sanity column).
    let completed = SimDriver::run(s).jobs.completed;
    let started = Instant::now();
    let mut runs = 0usize;
    while runs < min_runs || (started.elapsed().as_secs_f64() < budget_secs && runs < 50) {
        std::hint::black_box(SimDriver::run(s));
        runs += 1;
    }
    let secs_per_run = started.elapsed().as_secs_f64() / runs as f64;
    eprintln!("[perfjson] {name}: {secs_per_run:.3} s/run ({runs} runs, {completed} jobs)");
    Measurement {
        name,
        runs,
        secs_per_run,
        completed_jobs: completed,
    }
}

fn main() {
    let to_stdout = std::env::args().nth(1).as_deref() == Some("-");

    let measurements = [
        time_scenario("driver_quick_30d", &Scenario::quick(30, 3), 3, 3.0),
        time_scenario(
            "driver_small_2y",
            &Scenario::two_year_small(greener_bench::seeds::WORLD),
            3,
            10.0,
        ),
        time_scenario(
            "dispatch_heavy_90d",
            &dispatch_heavy_90d(greener_bench::seeds::WORLD),
            3,
            10.0,
        ),
    ];

    let mut json = String::from("{\n  \"benchmarks\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"secs_per_run\": {:.6}, \"runs_per_sec\": {:.6}, \"runs\": {}, \"completed_jobs\": {}}}{}\n",
            m.name,
            m.secs_per_run,
            1.0 / m.secs_per_run,
            m.runs,
            m.completed_jobs,
            if i + 1 < measurements.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    if to_stdout {
        print!("{json}");
    } else {
        std::fs::write("BENCH_engine.json", &json).expect("write BENCH_engine.json");
        print!("{json}");
        eprintln!("[perfjson] wrote BENCH_engine.json");
    }
}
