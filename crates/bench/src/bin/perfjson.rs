//! Emit a machine-readable engine-performance snapshot (`BENCH_engine.json`).
//!
//! ```sh
//! cargo run --release -p greener-bench --bin perfjson             # writes BENCH_engine.json
//! cargo run --release -p greener-bench --bin perfjson -- -        # prints to stdout only
//! cargo run --release -p greener-bench --bin perfjson -- --smoke - # 1 timed run/scenario (CI)
//! cargo run --release -p greener-bench --bin perfjson -- --profile # + replay phase split
//! ```
//!
//! Times the canonical engine scenarios — `driver_quick_30d`,
//! `driver_small_2y`, the saturated-queue `dispatch_heavy_90d`, the bursty
//! `dispatch_burst_7d` and the world-generation-only `worldgen_2y` lane —
//! and records runs/sec, per-run wall time, the **world-gen vs replay
//! split** (world generation is timed separately via `World::build`, so
//! the trajectory shows which half of a run future PRs are moving), the
//! **aggregates-only replay lane** (`Observe::aggregates()` over a shared
//! pre-built world, so the snapshot tracks the sweep fast path against the
//! full-probe replay number) and waiting-queue depth stats (max and mean
//! at hourly sampling, collected by the driver's `QueueDepthProbe`).
//! JSON is hand-formatted (the vendored serde stand-in has no serializer).
//!
//! A `"campaign"` section reports the `campaign_small` lane: the
//! policy-only campaign manifest (see `greener_bench::scenarios`) run
//! through `greener_core::campaign`'s shard-and-merge executor, with
//! cells/sec under world-reuse caching vs per-cell world rebuilds and a
//! merged-report byte-identity check across shard counts 1 and 2 (the CI
//! campaign smoke greps for it).
//!
//! A `"fleet"` section reports the `fleet_small` lane: the three-site
//! fleet (one shared trace, regionally-varied grids) run through
//! `greener_core::fleet`'s route-then-replay driver under the static and
//! greedy-carbon routing policies. Per policy it records runs/sec, the
//! fleet carbon total (value and `f64::to_bits` hex — the byte CI
//! compares across process invocations at different `RAYON_NUM_THREADS`)
//! and an in-process report byte-identity check across thread counts 1
//! and 4; a top-level `carbon_totals_differ` flag proves routing actually
//! moves carbon on the spread grids (the CI fleet smoke greps for both).
//!
//! Flags are parsed strictly by [`greener_bench::cli`]: an unknown flag
//! (e.g. a `--proflie` typo) aborts with the usage text instead of
//! silently running the wrong benchmark shape.
//!
//! `--smoke` runs each scenario once after warm-up: CI uses it to keep the
//! bench binary from rotting without paying for stable timings.
//!
//! `--profile` additionally runs each replay scenario once through the
//! driver's self-profiling mode (`SimDriver::run_profiled`, aggregates-only
//! observation — the sweep fast path being optimized) and attaches the
//! per-phase wall-time split and loop counters as a `"profile"` object:
//! signal build, policy dispatch (with backfill visits counted
//! separately), decision apply, tick cooling/ledger, plus unattributed
//! remainder. The apply/unattributed interiors are further split into
//! overlapping sub-phases (`event_pop`, `apply_alloc`, `apply_slab`,
//! `apply_completions`, `apply_probes`, `apply_schedule`, `tick_settle`,
//! emitted as `*_ns`), and the fast-path counters
//! (`fast_apply_events`, `backfill_cache_hits`, `backfill_visits_saved`)
//! prove the SoA apply slab and the backfill reject memo actually engage.
//! Profiled replays pay for the clock reads, so the split is
//! for *attribution*; the directly-timed lanes above stay the numbers of
//! record. This is the "profile before picking" instrument behind
//! ROADMAP's replay-remainder work.

use greener_bench::cli;
use greener_bench::scenarios::{
    campaign_small, dispatch_burst_7d, dispatch_heavy_90d, fleet_small,
};
use greener_core::campaign::process::{
    artifact_file_name, marker_file_name, FaultMode, FaultPlan, ProcessBackend, SupervisorConfig,
    WorkerCommand,
};
use greener_core::campaign::{
    partition, run_campaign, CampaignError, CampaignManifest, InProcessBackend, Plan, ShardBackend,
};
use greener_core::driver::{SimDriver, World};
use greener_core::fleet::{FleetDriver, FleetManifest, FleetWorld, RoutingPolicyKind};
use greener_core::probe::Observe;
use greener_core::profile::{ProfileCounter, ProfilePhase, ProfileSubPhase, ReplayProfile};
use greener_core::scenario::Scenario;
use greener_simkit::proc::write_atomic;
use std::path::Path;
use std::time::{Duration, Instant};

struct Measurement {
    name: &'static str,
    runs: usize,
    secs_per_run: f64,
    /// World-generation share of a run (timed via `World::build`).
    worldgen_secs_per_run: f64,
    /// Replay share: total minus world-gen (0 for world-gen-only lanes).
    /// Derived by subtraction across independent loops, so it carries
    /// that noise — compare the probe layer via the two directly-timed
    /// replay lanes below instead.
    replay_secs_per_run: f64,
    /// Full-probe replay (`run_with_world`) over a shared pre-built
    /// world, directly timed (0 for world-gen-only lanes).
    replay_full_secs_per_run: f64,
    /// Aggregates-only replay over the same shared world (the sweep fast
    /// path), directly timed — the delta to the full lane is the cost of
    /// frame assembly + ledger growth + job-record retention (0 for
    /// world-gen-only lanes).
    replay_agg_secs_per_run: f64,
    completed_jobs: usize,
    max_queue_depth: u32,
    mean_queue_depth: f64,
    /// Replay phase split from `SimDriver::run_profiled` (with
    /// `--profile`; replay scenarios only).
    profile: Option<ReplayProfile>,
}

/// Hand-format a [`ReplayProfile`] as the `"profile"` JSON object.
fn profile_json(p: &ReplayProfile) -> String {
    let mut parts: Vec<String> = vec![format!("\"total_ns\": {}", p.total.as_nanos())];
    parts.extend(
        ProfilePhase::ALL
            .iter()
            .map(|&ph| format!("\"{}_ns\": {}", ph.name(), p.phase(ph).as_nanos())),
    );
    parts.push(format!(
        "\"unattributed_ns\": {}",
        p.unattributed().as_nanos()
    ));
    // Sub-phases overlap the top-level phases (and the unattributed
    // remainder) rather than partitioning them — see
    // `greener_core::profile` for the containment relations.
    parts.extend(
        ProfileSubPhase::ALL
            .iter()
            .map(|&sp| format!("\"{}_ns\": {}", sp.name(), p.sub(sp).as_nanos())),
    );
    parts.extend(
        ProfileCounter::ALL
            .iter()
            .map(|&c| format!("\"{}\": {}", c.name(), p.counter(c))),
    );
    format!("{{{}}}", parts.join(", "))
}

/// Time `f` for at least `min_runs` and until `budget_secs` elapses.
fn time_loop<F: FnMut()>(min_runs: usize, budget_secs: f64, mut f: F) -> (usize, f64) {
    let started = Instant::now();
    let mut runs = 0usize;
    while runs < min_runs || (started.elapsed().as_secs_f64() < budget_secs && runs < 50) {
        f();
        runs += 1;
    }
    (runs, started.elapsed().as_secs_f64() / runs as f64)
}

fn time_scenario(
    name: &'static str,
    s: &Scenario,
    min_runs: usize,
    budget_secs: f64,
    profile: bool,
) -> Measurement {
    // Warm-up run; the queue-depth columns come straight off the
    // driver's `QueueDepthProbe` (aggregates-only otherwise — the
    // warm-up retains nothing per frame or per job).
    let world = World::build(s);
    let warm = SimDriver::run_observed(s, &world, Observe::aggregates().with_queue_depth());
    let completed = warm.jobs.completed;
    let depth = warm.queue_depth.expect("queue depth observed");
    let (runs, secs_per_run) = time_loop(min_runs, budget_secs, || {
        std::hint::black_box(SimDriver::run(s));
    });
    // World-gen share, timed on its own (half the budget: it is a strict
    // subset of the work, so it stabilizes faster).
    let (_, worldgen_secs) = time_loop(min_runs, budget_secs / 2.0, || {
        std::hint::black_box(World::build(s));
    });
    let worldgen_secs = worldgen_secs.min(secs_per_run);
    let replay_secs = secs_per_run - worldgen_secs;
    // The two replay lanes share one pre-built world and one protocol
    // (directly timed), so their delta isolates the probe layer: full
    // probe set vs the aggregates-only fast path every sweep cell pays.
    let (_, replay_full_secs) = time_loop(min_runs, budget_secs / 2.0, || {
        std::hint::black_box(SimDriver::run_with_world(s, &world));
    });
    let (_, replay_agg_secs) = time_loop(min_runs, budget_secs / 2.0, || {
        std::hint::black_box(SimDriver::run_observed(s, &world, Observe::aggregates()));
    });
    // Phase attribution over the same shared world and the same
    // aggregates-only observation the fast lane times (one pass — the
    // split is for attribution, not for end-to-end deltas).
    let profile = profile.then(|| {
        let (_, p) = SimDriver::run_profiled(s, &world, Observe::aggregates());
        eprintln!("[perfjson] {name} profile: {}", p.summary());
        p
    });
    eprintln!(
        "[perfjson] {name}: {secs_per_run:.3} s/run ({runs} runs, worldgen {worldgen_secs:.3} + \
         replay {replay_secs:.3}; direct replay full {replay_full_secs:.3} vs aggregates-only \
         {replay_agg_secs:.3}, {completed} jobs, queue depth max {} / mean {:.1})",
        depth.max,
        depth.mean()
    );
    Measurement {
        name,
        runs,
        secs_per_run,
        worldgen_secs_per_run: worldgen_secs,
        replay_secs_per_run: replay_secs,
        replay_full_secs_per_run: replay_full_secs,
        replay_agg_secs_per_run: replay_agg_secs,
        completed_jobs: completed,
        max_queue_depth: depth.max,
        mean_queue_depth: depth.mean(),
        profile,
    }
}

/// World-generation-only lane: times `World::build` for the flagship
/// two-year small world (the half of `driver_small_2y` this PR
/// parallelized). `completed_jobs` records the synthesized trace length.
fn time_worldgen(
    name: &'static str,
    s: &Scenario,
    min_runs: usize,
    budget_secs: f64,
) -> Measurement {
    let warm = World::build(s);
    let trace_len = warm.trace.len();
    let (runs, secs_per_run) = time_loop(min_runs, budget_secs, || {
        std::hint::black_box(World::build(s));
    });
    eprintln!("[perfjson] {name}: {secs_per_run:.3} s/run ({runs} runs, {trace_len} trace jobs)");
    Measurement {
        name,
        runs,
        secs_per_run,
        worldgen_secs_per_run: secs_per_run,
        replay_secs_per_run: 0.0,
        replay_full_secs_per_run: 0.0,
        replay_agg_secs_per_run: 0.0,
        completed_jobs: trace_len,
        max_queue_depth: 0,
        mean_queue_depth: 0.0,
        profile: None,
    }
}

/// The campaign lane's snapshot row: runs/sec through the shard-and-merge
/// executor with and without world-reuse caching, plus the merge
/// byte-identity check the CI campaign smoke greps for.
struct CampaignMeasurement {
    cells: usize,
    distinct_worlds: usize,
    reuse_secs_per_cell: f64,
    rebuild_secs_per_cell: f64,
    /// Merged report text byte-identical at shard counts 1 and 2.
    merged_identical_shards_1_2: bool,
}

/// Time the `campaign_small` manifest through the campaign executor.
///
/// Both timed passes run **one shard, sequentially**, so the ratio
/// isolates world reuse: the rebuild pass builds all `cells` worlds, the
/// reuse pass builds `distinct_worlds` (= 1 here — every axis is
/// replay-side) and replays the rest over the cache.
///
/// Caveat, as for every lane in this binary: the container's timer noise
/// is ±30% on short runs, so the recorded speedup is indicative, not a
/// gate. The structural expectation is `(worldgen + replay) / replay` of
/// the underlying scenario (~2.3× for `driver_small_2y`'s current split),
/// and the snapshot should stay in that neighbourhood.
fn time_campaign(min_runs: usize, budget_secs: f64) -> CampaignMeasurement {
    let plan = campaign_small(greener_bench::seeds::WORLD)
        .expand()
        .expect("campaign_small expands");
    let reuse = InProcessBackend { world_reuse: true };
    let rebuild = InProcessBackend { world_reuse: false };
    // Merge determinism across shard counts, on top of the equivalence
    // axis pinning it in-tree: the canonical report text must be
    // byte-identical however the plan is sharded.
    let one = run_campaign(&plan, &reuse, 1).expect("merge").to_text();
    let two = run_campaign(&plan, &reuse, 2).expect("merge").to_text();
    let merged_identical = one == two;
    let (reuse_runs, reuse_secs) = time_loop(min_runs, budget_secs, || {
        std::hint::black_box(run_campaign(&plan, &reuse, 1).expect("merge"));
    });
    let (_, rebuild_secs) = time_loop(min_runs, budget_secs, || {
        std::hint::black_box(run_campaign(&plan, &rebuild, 1).expect("merge"));
    });
    eprintln!(
        "[perfjson] campaign_small: {} cells over {} world(s), {:.3} s/campaign with reuse \
         ({reuse_runs} passes) vs {:.3} s/campaign rebuilding ({:.2}x), merged identical at \
         shards 1 vs 2: {merged_identical}",
        plan.len(),
        plan.distinct_worlds(),
        reuse_secs,
        rebuild_secs,
        rebuild_secs / reuse_secs,
    );
    CampaignMeasurement {
        cells: plan.len(),
        distinct_worlds: plan.distinct_worlds(),
        reuse_secs_per_cell: reuse_secs / plan.len() as f64,
        rebuild_secs_per_cell: rebuild_secs / plan.len() as f64,
        merged_identical_shards_1_2: merged_identical,
    }
}

/// One routing policy's row in the fleet lane.
struct FleetPolicyMeasurement {
    routing: &'static str,
    secs_per_run: f64,
    carbon_kg: f64,
    /// `f64::to_bits` hex of the fleet carbon total — the deterministic
    /// byte CI compares across process invocations at different
    /// `RAYON_NUM_THREADS`.
    carbon_bits: String,
    completed_jobs: usize,
    /// Full fleet report text byte-identical with `RAYON_NUM_THREADS`
    /// set to 1 and 4 in-process (routing + replay determinism).
    identical_threads_1_4: bool,
}

/// The fleet lane's snapshot row.
struct FleetMeasurement {
    sites: usize,
    routed_jobs: usize,
    /// The two policies' fleet carbon totals have different bit patterns
    /// (routing must matter on the spread grids).
    carbon_totals_differ: bool,
    policies: Vec<FleetPolicyMeasurement>,
}

/// Time the `fleet_small` fleet under the static and greedy-carbon
/// routing policies. The two policies share the spread fleet (and so the
/// shared trace); per policy the report is produced once under
/// `RAYON_NUM_THREADS` 1 and 4 and byte-compared, then the timed loop
/// runs over a shared pre-built fleet world.
fn time_fleet(min_runs: usize, budget_secs: f64) -> FleetMeasurement {
    let fleet = fleet_small(greener_bench::seeds::WORLD);
    let kinds = [RoutingPolicyKind::Static, RoutingPolicyKind::GreedyCarbon];
    let prior = std::env::var("RAYON_NUM_THREADS").ok();
    let mut policies = Vec::new();
    let mut routed_jobs = 0;
    for kind in kinds {
        let f = fleet.clone().with_routing(kind);
        let mut texts = Vec::new();
        for threads in ["1", "4"] {
            std::env::set_var("RAYON_NUM_THREADS", threads);
            let world = FleetWorld::build(&f);
            texts.push(FleetDriver::run_observed(&f, &world, Observe::aggregates()).to_text());
        }
        let identical = texts[0] == texts[1];
        let world = FleetWorld::build(&f);
        let warm = FleetDriver::run_observed(&f, &world, Observe::aggregates());
        routed_jobs = warm.routes.len();
        let (runs, secs_per_run) = time_loop(min_runs, budget_secs, || {
            std::hint::black_box(FleetDriver::run_observed(&f, &world, Observe::aggregates()));
        });
        eprintln!(
            "[perfjson] fleet_small/{}: {secs_per_run:.3} s/run ({runs} runs, {} routed, \
             {} completed, carbon {:.1} kg, identical at threads 1 vs 4: {identical})",
            kind.label(),
            warm.routes.len(),
            warm.jobs.completed,
            warm.totals.carbon_kg,
        );
        policies.push(FleetPolicyMeasurement {
            routing: kind.label(),
            secs_per_run,
            carbon_kg: warm.totals.carbon_kg,
            carbon_bits: format!("{:016x}", warm.totals.carbon_kg.to_bits()),
            completed_jobs: warm.jobs.completed,
            identical_threads_1_4: identical,
        });
    }
    match prior {
        Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
        None => std::env::remove_var("RAYON_NUM_THREADS"),
    }
    FleetMeasurement {
        sites: fleet.sites.len(),
        routed_jobs,
        carbon_totals_differ: policies[0].carbon_bits != policies[1].carbon_bits,
        policies,
    }
}

/// The worker body shared by `campaign-worker` and
/// `fleet-campaign-worker` — the process spawned per shard by
/// [`ProcessBackend`]. Re-expands the manifest through `expand` (the
/// only plan-kind-specific step), runs its shard in-process, and
/// publishes artifact then marker (both atomically). Honors
/// `GREENER_FAULT` + `GREENER_WORKER_ATTEMPT` for deterministic fault
/// injection: `crash`/`hang` fire *before* the manifest is read
/// (simulating a worker that dies before any useful work),
/// `corrupt`/`truncate` damage the artifact text just before publication
/// — with the marker still written, so only validation can catch them.
fn run_worker_impl<P: Plan>(
    mode: &str,
    args: &cli::WorkerArgs,
    expand: impl FnOnce(&str) -> Result<P, String>,
) {
    let die = |msg: String| -> ! {
        eprintln!("{mode}: {msg}");
        std::process::exit(2);
    };
    // Unset means a direct invocation outside a supervisor: attempt 0,
    // so a hand-run worker behaves like a first attempt. Anything set
    // but unparsable dies instead of defaulting — a mangled ordinal
    // would silently re-fire first-attempt faults on every retry and
    // the supervised campaign would burn its attempt budget on a
    // spawn-environment bug.
    let attempt: u32 = match std::env::var("GREENER_WORKER_ATTEMPT") {
        Err(std::env::VarError::NotPresent) => 0,
        Err(e) => die(format!("bad GREENER_WORKER_ATTEMPT: {e}")),
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| die(format!("bad GREENER_WORKER_ATTEMPT `{v}`"))),
    };
    let faults = FaultPlan::from_env().unwrap_or_else(|e| die(e));
    let fault = faults.fault_for(args.shard, attempt);
    match fault {
        Some(FaultMode::Crash) => {
            eprintln!(
                "{mode}: injected crash (shard {}, attempt {attempt})",
                args.shard
            );
            std::process::exit(3);
        }
        Some(FaultMode::Hang) => loop {
            std::thread::sleep(Duration::from_millis(100));
        },
        _ => {}
    }
    let manifest_text = std::fs::read_to_string(&args.manifest)
        .unwrap_or_else(|e| die(format!("read manifest `{}`: {e}", args.manifest)));
    let plan = expand(&manifest_text).unwrap_or_else(|e| die(e));
    if args.shard >= args.of {
        die(format!("shard {} out of range 0..{}", args.shard, args.of));
    }
    let spec = partition(plan.len(), args.of)[args.shard];
    let artifact = InProcessBackend::default().run_shard(&plan, &spec);
    let mut text = artifact.text;
    if let Some(mode_) = fault {
        mode_.mangle(&mut text);
        eprintln!(
            "{mode}: injected {mode_:?} (shard {}, attempt {attempt})",
            args.shard
        );
    }
    let dir = Path::new(&args.dir);
    write_atomic(
        &dir.join(artifact_file_name(args.shard, args.of)),
        text.as_bytes(),
    )
    .unwrap_or_else(|e| die(format!("publish artifact: {e}")));
    write_atomic(&dir.join(marker_file_name(args.shard, args.of)), b"ok\n")
        .unwrap_or_else(|e| die(format!("publish marker: {e}")));
}

/// `perfjson campaign-worker`: one **campaign** shard.
fn run_worker(args: &cli::WorkerArgs) {
    run_worker_impl("campaign-worker", args, |text| {
        CampaignManifest::parse(text)
            .map_err(|e| e.to_string())?
            .expand()
            .map_err(|e| e.to_string())
    });
}

/// `perfjson fleet-campaign-worker`: one **fleet** shard. Identical
/// contract; the manifest is a [`FleetManifest`].
fn run_fleet_worker(args: &cli::WorkerArgs) {
    run_worker_impl("fleet-campaign-worker", args, |text| {
        FleetManifest::parse(text)
            .map_err(|e| e.to_string())?
            .expand()
            .map_err(|e| e.to_string())
    });
}

/// The supervised driver body shared by `campaign` and `fleet-campaign`.
/// Spawns this same binary in `worker_mode` per shard, prints the
/// byte-stable merged report followed by the diagnostic run report, and
/// with `--check` compares the merged text against a clean in-process
/// run (exit 1 on divergence). A `GREENER_FAULT` spec in the driver's
/// environment is forwarded to workers through the supervisor config.
fn run_campaign_impl<P: Plan>(
    mode: &str,
    worker_mode: &str,
    args: &cli::CampaignArgs,
    build: impl FnOnce(
        &str,
        WorkerCommand,
        &str,
        SupervisorConfig,
    ) -> Result<ProcessBackend<P>, CampaignError>,
) {
    let die = |msg: String| -> ! {
        eprintln!("{mode}: {msg}");
        std::process::exit(2);
    };
    let manifest_text = std::fs::read_to_string(&args.manifest)
        .unwrap_or_else(|e| die(format!("read manifest `{}`: {e}", args.manifest)));
    let program = std::env::current_exe().unwrap_or_else(|e| die(format!("current_exe: {e}")));
    let worker = WorkerCommand {
        program,
        args: vec![worker_mode.into()],
    };
    let config = SupervisorConfig {
        timeout: Duration::from_millis(args.timeout_ms),
        max_attempts: args.max_attempts.max(1),
        resume: args.resume,
        fault: std::env::var("GREENER_FAULT")
            .ok()
            .filter(|s| !s.is_empty()),
        ..SupervisorConfig::default()
    };
    let backend =
        build(&manifest_text, worker, &args.dir, config).unwrap_or_else(|e| die(e.to_string()));
    let (report, run) = backend
        .run_supervised(args.shards)
        .unwrap_or_else(|e| die(e.to_string()));
    print!("{}", report.to_text());
    print!("{}", run.to_text());
    if args.check {
        let reference = run_campaign(backend.plan(), &InProcessBackend::default(), 1)
            .unwrap_or_else(|e| die(e.to_string()))
            .to_text();
        let identical = reference == report.to_text();
        println!("process_report_identical_in_process {identical}");
        if !identical {
            std::process::exit(1);
        }
    }
}

/// `perfjson campaign`: supervise a **campaign** manifest.
fn run_campaign_cmd(args: &cli::CampaignArgs) {
    run_campaign_impl(
        "campaign",
        "campaign-worker",
        args,
        |text, worker, dir, config| ProcessBackend::new(text, worker, dir, config),
    );
}

/// `perfjson fleet-campaign`: supervise a **fleet** manifest through the
/// identical supervision stack (timeouts, retries, resume, validation).
fn run_fleet_campaign_cmd(args: &cli::CampaignArgs) {
    run_campaign_impl(
        "fleet-campaign",
        "fleet-campaign-worker",
        args,
        |text, worker, dir, config| ProcessBackend::new_fleet(text, worker, dir, config),
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match cli::parse_command(&args) {
        Ok(Some(cli::Command::Perf(parsed))) => parsed,
        Ok(Some(cli::Command::Worker(w))) => return run_worker(&w),
        Ok(Some(cli::Command::Campaign(c))) => return run_campaign_cmd(&c),
        Ok(Some(cli::Command::FleetWorker(w))) => return run_fleet_worker(&w),
        Ok(Some(cli::Command::FleetCampaign(c))) => return run_fleet_campaign_cmd(&c),
        Ok(None) => {
            print!(
                "{}",
                match args.first().map(String::as_str) {
                    Some("campaign-worker") => cli::WORKER_USAGE,
                    Some("campaign") => cli::CAMPAIGN_USAGE,
                    Some("fleet-campaign-worker") => cli::FLEET_WORKER_USAGE,
                    Some("fleet-campaign") => cli::FLEET_CAMPAIGN_USAGE,
                    _ => cli::USAGE,
                }
            );
            return;
        }
        Err(err) => {
            eprintln!("perfjson: {err}");
            std::process::exit(2);
        }
    };
    let (smoke, profile) = (parsed.smoke, parsed.profile);
    // Smoke mode: one timed run per scenario (plus the warm-up), so CI can
    // prove the bench binary still runs without waiting for stable timings.
    // Single-run timings are noise, so smoke mode never overwrites the
    // curated BENCH_engine.json trajectory — it always prints to stdout
    // (`cli::parse` forces `to_stdout` under `--smoke`).
    let to_stdout = parsed.to_stdout;
    let (min_runs, short_budget, long_budget) = if smoke { (1, 0.0, 0.0) } else { (3, 3.0, 10.0) };

    let measurements = [
        time_scenario(
            "driver_quick_30d",
            &Scenario::quick(30, 3),
            min_runs,
            short_budget,
            profile,
        ),
        time_scenario(
            "driver_small_2y",
            &Scenario::two_year_small(greener_bench::seeds::WORLD),
            min_runs,
            long_budget,
            profile,
        ),
        time_worldgen(
            "worldgen_2y",
            &Scenario::two_year_small(greener_bench::seeds::WORLD),
            min_runs,
            long_budget,
        ),
        time_scenario(
            "dispatch_heavy_90d",
            &dispatch_heavy_90d(greener_bench::seeds::WORLD),
            min_runs,
            long_budget,
            profile,
        ),
        time_scenario(
            "dispatch_burst_7d",
            &dispatch_burst_7d(greener_bench::seeds::WORLD),
            min_runs,
            short_budget,
            profile,
        ),
    ];

    let campaign = time_campaign(min_runs, long_budget);
    let fleet = time_fleet(min_runs, short_budget);

    let mut json = String::from("{\n  \"benchmarks\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        // `unwrap_or_default()` is the point here, not a swallowed error:
        // `profile` is `None` whenever `--profile` wasn't requested, and
        // the empty string simply omits the optional JSON field.
        let profile_field = m
            .profile
            .as_ref()
            .map(|p| format!(", \"profile\": {}", profile_json(p)))
            .unwrap_or_default();
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"secs_per_run\": {:.6}, \"runs_per_sec\": {:.6}, \"worldgen_secs_per_run\": {:.6}, \"replay_secs_per_run\": {:.6}, \"replay_full_probes_secs_per_run\": {:.6}, \"replay_aggregates_only_secs_per_run\": {:.6}, \"runs\": {}, \"completed_jobs\": {}, \"max_queue_depth\": {}, \"mean_queue_depth\": {:.1}{}}}{}\n",
            m.name,
            m.secs_per_run,
            1.0 / m.secs_per_run,
            m.worldgen_secs_per_run,
            m.replay_secs_per_run,
            m.replay_full_secs_per_run,
            m.replay_agg_secs_per_run,
            m.runs,
            m.completed_jobs,
            m.max_queue_depth,
            m.mean_queue_depth,
            profile_field,
            if i + 1 < measurements.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"campaign\": {{\"name\": \"campaign_small\", \"cells\": {}, \"distinct_worlds\": {}, \
         \"cells_per_sec_world_reuse\": {:.6}, \"cells_per_sec_rebuild\": {:.6}, \
         \"world_reuse_speedup\": {:.3}, \"merged_identical_shards_1_2\": {}}},\n",
        campaign.cells,
        campaign.distinct_worlds,
        1.0 / campaign.reuse_secs_per_cell,
        1.0 / campaign.rebuild_secs_per_cell,
        campaign.rebuild_secs_per_cell / campaign.reuse_secs_per_cell,
        campaign.merged_identical_shards_1_2,
    ));
    json.push_str(&format!(
        "  \"fleet\": {{\"name\": \"fleet_small\", \"sites\": {}, \"routed_jobs\": {}, \
         \"carbon_totals_differ\": {}, \"policies\": [\n",
        fleet.sites, fleet.routed_jobs, fleet.carbon_totals_differ,
    ));
    for (i, p) in fleet.policies.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"routing\": \"{}\", \"secs_per_run\": {:.6}, \"runs_per_sec\": {:.6}, \
             \"carbon_kg\": {:.6}, \"carbon_kg_bits\": \"{}\", \"completed_jobs\": {}, \
             \"identical_threads_1_4\": {}}}{}\n",
            p.routing,
            p.secs_per_run,
            1.0 / p.secs_per_run,
            p.carbon_kg,
            p.carbon_bits,
            p.completed_jobs,
            p.identical_threads_1_4,
            if i + 1 < fleet.policies.len() {
                ","
            } else {
                ""
            }
        ));
    }
    json.push_str("  ]}\n");
    json.push_str("}\n");

    if to_stdout {
        print!("{json}");
    } else {
        std::fs::write("BENCH_engine.json", &json).expect("write BENCH_engine.json");
        print!("{json}");
        eprintln!("[perfjson] wrote BENCH_engine.json");
    }
}
