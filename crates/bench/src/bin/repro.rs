//! Regenerate every figure and table of *“A Green(er) World for A.I.”*.
//!
//! ```sh
//! cargo run --release -p greener-bench --bin repro            # everything
//! cargo run --release -p greener-bench --bin repro fig2 e7    # a subset
//! ```
//!
//! Figures F2–F5 run the flagship full-scale two-year world (640 GPUs,
//! ~300k jobs); the ablations run the 1/10-scale world or shorter windows
//! so the whole reproduction finishes in a couple of minutes. Scales are
//! recorded in `EXPERIMENTS.md`.

use greener_core::ablations::*;
use greener_core::driver::{RunResult, SimDriver};
use greener_core::experiments::*;
use greener_core::scenario::Scenario;
use greener_workload::ConferenceCalendar;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |id: &str| args.is_empty() || args.iter().any(|a| a == id);

    let mut flagship: Option<RunResult> = None;

    if want("fig1") {
        let f = fig1();
        println!("== Fig. 1: Modern AI's computational demands ==");
        println!("{:<30} {:>8} {:>14}", "system", "year", "pfs-days");
        for (name, year, pfs) in &f.rows {
            println!("{name:<30} {year:>8.1} {pfs:>14.3e}");
        }
        println!(
            "doubling time: {:.1} months (pre-2012)  |  {:.1} months (post-2012)  |  modern-era growth {:.1e}x\n",
            f.doubling_before_months, f.doubling_after_months, f.modern_growth
        );
    }

    if want("fig2") || want("fig3") || want("fig4") || want("fig5") {
        eprintln!("[repro] simulating the flagship two-year world …");
        flagship = Some(SimDriver::run(&Scenario::two_year_baseline(
            greener_bench::seeds::WORLD,
        )));
    }

    if let Some(run) = &flagship {
        if want("fig2") {
            let f = fig2(run);
            println!("== Fig. 2: power consumption vs. green fuel mix ==");
            println!("{:<10} {:>12} {:>16}", "month", "avg kW", "% solar/wind");
            for r in &f.rows {
                println!(
                    "{:<10} {:>12.1} {:>16.2}",
                    r.ym.to_string(),
                    r.power_kw,
                    r.green_pct
                );
            }
            println!("pearson(power, green) = {:.3}\n", f.correlation);
        }
        if want("fig3") {
            let f = fig3(run);
            println!("== Fig. 3: energy prices vs. green fuel mix ==");
            println!("{:<10} {:>12} {:>16}", "month", "LMP $/MWh", "% solar/wind");
            for r in &f.rows {
                println!(
                    "{:<10} {:>12.1} {:>16.2}",
                    r.ym.to_string(),
                    r.lmp_usd_mwh,
                    r.green_pct
                );
            }
            println!(
                "pearson(price, green) = {:.3}; spring (Feb–May) mean ${:.1}/MWh\n",
                f.correlation, f.spring_mean_price
            );
        }
        if want("fig4") {
            let f = fig4(run);
            println!("== Fig. 4: power consumption vs. temperature ==");
            println!("{:<10} {:>12} {:>10}", "month", "avg kW", "temp °F");
            for r in &f.rows {
                println!(
                    "{:<10} {:>12.1} {:>10.1}",
                    r.ym.to_string(),
                    r.power_kw,
                    r.temp_f
                );
            }
            println!(
                "spearman(temp, power) = {:.3}; pearson = {:.3}\n",
                f.spearman, f.pearson
            );
        }
        if want("fig5") {
            let f = fig5(run, &ConferenceCalendar::table_i());
            println!("== Fig. 5: energy usage vs. conference deadlines ==");
            println!(
                "{:<10} {:>12} {:>12} {:>11}",
                "month", "avg kW", "IT kW", "deadlines"
            );
            for r in &f.rows {
                println!(
                    "{:<10} {:>12.1} {:>12.1} {:>11}",
                    r.ym.to_string(),
                    r.power_kw,
                    r.it_power_kw,
                    r.deadlines
                );
            }
            println!(
                "IT power leads deadlines by {} month(s), r = {:.2}; early-year pickup {:.2} kW (2021) vs {:.2} kW (2020)\n",
                f.lead_months, f.lead_correlation, f.pickup_2021_kw, f.pickup_2020_kw
            );
        }
    }

    if want("table1") {
        let t = table1();
        println!("== Table I: list of notable conferences ==");
        for (area, confs) in &t.rows {
            println!("{area:<16} {}", confs.join(", "));
        }
        println!("total deadline events 2020–21: {}\n", t.total_deadlines);
    }

    // ---- Ablations on the 1/10-scale world (documented in EXPERIMENTS.md).
    let small = Scenario::two_year_small(greener_bench::seeds::WORLD);
    let quarter = small.clone().with_horizon_days(91);
    let summer_month = {
        let mut s = small.clone().with_horizon_days(31);
        s.start = greener_simkit::calendar::CalDate::new(2020, 7, 1);
        s
    };
    let year = small.clone().with_horizon_days(366);

    if want("e6") {
        println!("== E6 (§II-A): energy-purchasing strategies, Q1-2020 ==");
        println!(
            "{:<18} {:>11} {:>10} {:>9} {:>9} {:>9} {:>9}",
            "strategy", "energy kWh", "carbon kg", "cost $", "green %", "dCO2 %", "wait h"
        );
        for r in e6_purchasing(&quarter) {
            println!(
                "{:<18} {:>11.0} {:>10.0} {:>9.0} {:>9.2} {:>9.2} {:>9.2}",
                r.strategy,
                r.energy_kwh,
                r.carbon_kg,
                r.cost_usd,
                r.green_share * 100.0,
                r.carbon_saved_pct,
                r.mean_wait_hours
            );
        }
        println!();
    }

    if want("e7") {
        println!("== E7 (§II-C / ref [15]): GPU power-cap sweep, 45 days ==");
        let s = small.clone().with_horizon_days(45);
        let rows = e7_powercaps(&s, &[100.0, 125.0, 150.0, 175.0, 200.0, 225.0, 250.0]);
        println!(
            "{:<8} {:>7} {:>13} {:>11} {:>14} {:>9}",
            "cap W", "speed", "IT kWh", "GPU-hours", "kWh/GPU-hr", "stretch"
        );
        for r in &rows {
            println!(
                "{:<8.0} {:>7.2} {:>13.0} {:>11.0} {:>14.3} {:>9.2}",
                r.cap_w,
                r.speed,
                r.it_energy_kwh,
                r.gpu_hours,
                r.kwh_per_gpu_hour,
                r.runtime_stretch
            );
        }
        println!(
            "measured energy-optimal cap: {:.0} W\n",
            e7_optimal_cap(&rows)
        );
    }

    if want("e8") {
        println!("== E8 (§II-C): two-part mechanism ==");
        let cmp = e8_mechanism(greener_bench::seeds::MECHANISM);
        for (name, o) in [
            ("laissez-faire", &cmp.laissez_faire),
            ("caps-only", &cmp.caps_only),
            ("two-part", &cmp.two_part),
        ] {
            println!(
                "{:<14} energy-index {:.3}  time-factor {:.3}  utility {:+.3}  tiers {:?}",
                name, o.mean_energy_index, o.mean_time_factor, o.mean_utility, o.tier_counts
            );
        }
        println!();
    }

    if want("e9") {
        println!("== E9 (§II-C): queue segmentation & adverse selection ==");
        let out = e9_adverse_selection(greener_bench::seeds::MECHANISM);
        for (name, o) in [("truthful", &out.truthful), ("strategic", &out.strategic)] {
            println!(
                "{:<10} shares urgent/std/green {:.2}/{:.2}/{:.2}  waits {:.1}/{:.1}/{:.1} h  imbalance {:.2}",
                name,
                o.queue_shares[0],
                o.queue_shares[1],
                o.queue_shares[2],
                o.queue_waits[0],
                o.queue_waits[1],
                o.queue_waits[2],
                o.imbalance()
            );
        }
        println!();
    }

    if want("e10") {
        println!("== E10 (§II-B): weatherization stress suite, July 2020 ==");
        println!(
            "{:<26} {:>9} {:>9} {:>10} {:>8} {:>6}",
            "scenario", "cool-sat%", "slo-viol%", "energy kWh", "PUE", "pass"
        );
        for r in e10_stress(&summer_month) {
            println!(
                "{:<26} {:>9.2} {:>9.2} {:>10.0} {:>8.3} {:>6}",
                r.scenario,
                r.cooling_saturation * 100.0,
                r.slo_violation * 100.0,
                r.energy_kwh,
                r.mean_pue,
                if r.pass { "PASS" } else { "FAIL" }
            );
        }
        println!();
    }

    if want("e11") {
        println!("== E11 (§II-C): predictive analytics ==");
        let rep = e11_forecast(&quarter);
        println!("green-share forecasters (24 h horizon, rolling backtest):");
        println!(
            "{:<16} {:>10} {:>10} {:>9}",
            "model", "MAE", "RMSE", "sMAPE %"
        );
        for b in &rep.green_share_backtests {
            println!(
                "{:<16} {:>10.5} {:>10.5} {:>9.2}",
                format!("{:?}", b.kind),
                b.mae,
                b.rmse,
                b.smape
            );
        }
        println!("value of forecast (carbon-aware policy, total kg CO2):");
        for (mode, kg) in &rep.value_of_forecast {
            println!("  {:<14} {:>10.0} kg", mode, kg);
        }
        println!();
    }

    if want("e12") {
        println!("== E12 (§III): deadline restructuring, calendar year 2020 ==");
        println!(
            "{:<16} {:>11} {:>10} {:>11} {:>9} {:>8}",
            "policy", "energy kWh", "carbon kg", "IT-sd kW", "summer %", "wait h"
        );
        for r in e12_restructure(&year) {
            println!(
                "{:<16} {:>11.0} {:>10.0} {:>11.2} {:>9.2} {:>8.2}",
                r.policy,
                r.energy_kwh,
                r.carbon_kg,
                r.monthly_it_std_kw,
                r.summer_energy_share * 100.0,
                r.mean_wait_hours
            );
        }
        println!();
    }

    if want("e13") {
        println!("== E13 (§IV-B): training vs. inference fleet ==");
        let r = e13_inference(768, 64);
        println!(
            "inference energy share {:.1}%  inference util {:.1}%  training util {:.0}%  efficiency penalty {:.1}x\n",
            r.inference_energy_share * 100.0,
            r.inference_utilization * 100.0,
            r.training_utilization * 100.0,
            r.inference_efficiency_penalty
        );
    }

    if want("e15") {
        println!("== E15 (§IV-A): redundancy & reproducibility waste ==");
        let r = e15_redundancy();
        println!(
            "sweep (81 configs x 100 GPU-h): naive {:.0} GPU-h vs successive-halving {:.0} GPU-h ({:.0}% redundant)",
            r.sweep_naive_gpu_hours,
            r.sweep_halving_gpu_hours,
            r.sweep_redundancy_fraction * 100.0
        );
        println!(
            "replication (25 labs): good reporting {:.0} GPU-h vs poor reporting {:.0} GPU-h => {:.0} kg CO2 wasted
",
            r.replication_good_gpu_hours,
            r.replication_poor_gpu_hours,
            r.reporting_waste_carbon_kg
        );
    }

    if want("e14") {
        println!("== E14 (§IV-B): footprint-estimate variance (1M reference GPU-hours) ==");
        let v = e14_variance(1.0e6);
        for (label, kg, cars) in &v.estimates {
            println!("{label:<48} {kg:>14.0} kg CO2  ({cars:>10.5} cars)");
        }
        println!("max/min spread: {:.1e}x\n", v.spread);
    }
}
