//! Regional demand and fuel-mix dispatch.
//!
//! The model dispatches six fuel categories against an hourly regional load:
//! wind and solar are weather-driven (must-take), nuclear is baseload with
//! spring/fall refueling derates, hydro follows spring melt, "other"
//! (refuse/wood/oil) is flat, and **gas is the residual marginal fuel** —
//! exactly the ISO-NE structure that produces the paper's seasonal green
//! share: windy springs push solar+wind above 8 % while calm, high-load
//! summers drop it toward 5 % (Fig. 2/3's x-axis).

use greener_climate::WeatherPath;
use greener_simkit::calendar::Calendar;
use greener_simkit::rng::RngHub;
use greener_simkit::series::HourlySeries;
use greener_simkit::time::SimTime;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::carbon;
use crate::price::{self, PriceConfig};

/// Fuel categories in the regional mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FuelSource {
    /// Natural gas (marginal fuel).
    Gas,
    /// Nuclear baseload.
    Nuclear,
    /// Hydroelectric (including imports).
    Hydro,
    /// Onshore/offshore wind.
    Wind,
    /// Utility-scale solar.
    Solar,
    /// Everything else: refuse, wood, oil peakers.
    Other,
}

impl FuelSource {
    /// All categories, dispatch order irrelevant.
    pub const ALL: [FuelSource; 6] = [
        FuelSource::Gas,
        FuelSource::Nuclear,
        FuelSource::Hydro,
        FuelSource::Wind,
        FuelSource::Solar,
        FuelSource::Other,
    ];

    /// True for the paper's "sustainable fuel" definition (solar + wind).
    pub fn is_green(self) -> bool {
        matches!(self, FuelSource::Wind | FuelSource::Solar)
    }
}

/// Grid model configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GridConfig {
    /// Mean regional demand, MW.
    pub base_demand_mw: f64,
    /// Cooling-demand slope: extra MW per °F above 65 °F.
    pub cooling_mw_per_degf: f64,
    /// Heating-demand slope: extra MW per °F below 50 °F.
    pub heating_mw_per_degf: f64,
    /// Diurnal demand swing as a fraction of base (peak ≈ 18:00).
    pub diurnal_fraction: f64,
    /// Weekend demand reduction fraction.
    pub weekend_reduction: f64,
    /// Installed wind capacity, MW.
    pub wind_capacity_mw: f64,
    /// Installed solar capacity, MW.
    pub solar_capacity_mw: f64,
    /// Nuclear baseload, MW.
    pub nuclear_mw: f64,
    /// Mean hydro output, MW (scaled seasonally).
    pub hydro_mean_mw: f64,
    /// Flat "other" output, MW.
    pub other_mw: f64,
    /// Std-dev of multiplicative demand noise.
    pub demand_noise: f64,
    /// Price model parameters.
    pub price: PriceConfig,
    /// Multiplier on fossil emission factors (stress scenarios).
    pub fossil_emission_mult: f64,
}

impl Default for GridConfig {
    fn default() -> Self {
        GridConfig {
            base_demand_mw: 13_000.0,
            cooling_mw_per_degf: 260.0,
            heating_mw_per_degf: 110.0,
            diurnal_fraction: 0.14,
            weekend_reduction: 0.07,
            wind_capacity_mw: 2_500.0,
            solar_capacity_mw: 2_000.0,
            nuclear_mw: 3_350.0,
            hydro_mean_mw: 900.0,
            other_mw: 800.0,
            demand_noise: 0.015,
            price: PriceConfig::default(),
            fossil_emission_mult: 1.0,
        }
    }
}

impl GridConfig {
    /// Hourly regional demand before noise, MW.
    pub fn deterministic_demand_mw(&self, calendar: &Calendar, hour: u64, temp_f: f64) -> f64 {
        let t = SimTime::from_hours(hour);
        let mut d = self.base_demand_mw;
        d += self.cooling_mw_per_degf * (temp_f - 65.0).max(0.0);
        d += self.heating_mw_per_degf * (50.0 - temp_f).max(0.0);
        let hod = calendar.hour_of_day(t) as f64;
        let phase = (hod - 18.0) / 24.0 * std::f64::consts::TAU;
        d *= 1.0 + self.diurnal_fraction * phase.cos();
        if calendar.is_weekend(t) {
            d *= 1.0 - self.weekend_reduction;
        }
        d
    }

    /// Seasonal hydro availability multiplier (spring melt peak).
    pub fn hydro_seasonal(&self, calendar: &Calendar, hour: u64) -> f64 {
        let f = calendar.year_fraction(SimTime::from_hours(hour));
        // Peaks late April (f ≈ 0.31), trough early autumn.
        1.0 + 0.35 * (std::f64::consts::TAU * (f - 0.06)).sin()
    }

    /// Nuclear derate factor (refueling outages in shoulder seasons).
    pub fn nuclear_seasonal(&self, calendar: &Calendar, hour: u64) -> f64 {
        let f = calendar.year_fraction(SimTime::from_hours(hour));
        // Mild derates around April and October refuelings.
        let spring = (-((f - 0.28) / 0.04).powi(2)).exp();
        let fall = (-((f - 0.79) / 0.04).powi(2)).exp();
        1.0 - 0.18 * spring - 0.12 * fall
    }
}

/// A generated hourly grid path.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GridPath {
    calendar: Calendar,
    /// Regional demand, MW.
    pub demand_mw: Vec<f64>,
    /// Wind generation, MW.
    pub wind_mw: Vec<f64>,
    /// Solar generation, MW.
    pub solar_mw: Vec<f64>,
    /// Nuclear generation, MW.
    pub nuclear_mw: Vec<f64>,
    /// Hydro generation, MW.
    pub hydro_mw: Vec<f64>,
    /// Other generation, MW.
    pub other_mw: Vec<f64>,
    /// Gas generation (residual), MW.
    pub gas_mw: Vec<f64>,
    /// Locational marginal price, $/MWh.
    pub lmp_usd_mwh: Vec<f64>,
    /// Grid carbon intensity, kg CO₂ per MWh.
    pub ci_kg_mwh: Vec<f64>,
    /// Share of total generation from solar + wind, in \[0,1\].
    pub green_share: Vec<f64>,
}

/// One shard's worth of dispatched columns (a `GridPath` block without the
/// calendar).
struct GridBlock {
    demand_mw: Vec<f64>,
    wind_mw: Vec<f64>,
    solar_mw: Vec<f64>,
    nuclear_mw: Vec<f64>,
    hydro_mw: Vec<f64>,
    other_mw: Vec<f64>,
    gas_mw: Vec<f64>,
    lmp_usd_mwh: Vec<f64>,
    ci_kg_mwh: Vec<f64>,
    green_share: Vec<f64>,
}

impl GridBlock {
    fn with_capacity(n: usize) -> GridBlock {
        GridBlock {
            demand_mw: Vec::with_capacity(n),
            wind_mw: Vec::with_capacity(n),
            solar_mw: Vec::with_capacity(n),
            nuclear_mw: Vec::with_capacity(n),
            hydro_mw: Vec::with_capacity(n),
            other_mw: Vec::with_capacity(n),
            gas_mw: Vec::with_capacity(n),
            lmp_usd_mwh: Vec::with_capacity(n),
            ci_kg_mwh: Vec::with_capacity(n),
            green_share: Vec::with_capacity(n),
        }
    }
}

/// Hours per grid dispatch shard (one week, matching the trace shard
/// granularity). Unlike the trace shards this is *not* part of the path's
/// identity: shard edges only partition a pure per-hour computation, so any
/// shard size produces the identical path.
const GRID_SHARD_HOURS: usize = 7 * 24;

impl GridPath {
    /// Generate the grid path for the same horizon as `weather`
    /// (sequential reference schedule; see [`Self::generate_mode`]).
    pub fn generate(config: &GridConfig, weather: &WeatherPath, hub: &RngHub) -> GridPath {
        Self::generate_mode(config, weather, hub, false)
    }

    /// Generate the grid path, optionally dispatching week-blocks of hours
    /// in parallel.
    ///
    /// The only stochastic input is the hourly demand-noise stream, which
    /// is drawn up front in hour order (cheap); everything downstream is a
    /// pure function of `(config, weather, noise[h], h)`, so the hour
    /// blocks can be computed in any order — or concurrently — and
    /// concatenated in index order for a bit-identical path.
    pub fn generate_mode(
        config: &GridConfig,
        weather: &WeatherPath,
        hub: &RngHub,
        parallel: bool,
    ) -> GridPath {
        let calendar = *weather.calendar();
        let hours = weather.hours();
        let mut noise_rng = hub.stream("grid.demand-noise");
        let noise_u: Vec<f64> = (0..hours)
            .map(|_| noise_rng.gen_range(-1.0..1.0f64))
            .collect();

        let shards = hours.div_ceil(GRID_SHARD_HOURS);
        let blocks = greener_simkit::par::sharded_map(parallel, shards, |s| {
            let lo = s * GRID_SHARD_HOURS;
            let hi = (lo + GRID_SHARD_HOURS).min(hours);
            Self::dispatch_hours(config, weather, &calendar, &noise_u, lo, hi)
        });

        let mut path = GridPath {
            calendar,
            demand_mw: Vec::with_capacity(hours),
            wind_mw: Vec::with_capacity(hours),
            solar_mw: Vec::with_capacity(hours),
            nuclear_mw: Vec::with_capacity(hours),
            hydro_mw: Vec::with_capacity(hours),
            other_mw: Vec::with_capacity(hours),
            gas_mw: Vec::with_capacity(hours),
            lmp_usd_mwh: Vec::with_capacity(hours),
            ci_kg_mwh: Vec::with_capacity(hours),
            green_share: Vec::with_capacity(hours),
        };
        for b in blocks {
            path.demand_mw.extend_from_slice(&b.demand_mw);
            path.wind_mw.extend_from_slice(&b.wind_mw);
            path.solar_mw.extend_from_slice(&b.solar_mw);
            path.nuclear_mw.extend_from_slice(&b.nuclear_mw);
            path.hydro_mw.extend_from_slice(&b.hydro_mw);
            path.other_mw.extend_from_slice(&b.other_mw);
            path.gas_mw.extend_from_slice(&b.gas_mw);
            path.lmp_usd_mwh.extend_from_slice(&b.lmp_usd_mwh);
            path.ci_kg_mwh.extend_from_slice(&b.ci_kg_mwh);
            path.green_share.extend_from_slice(&b.green_share);
        }
        path
    }

    /// Dispatch hours `lo..hi` into a column block (pure; shard-safe).
    fn dispatch_hours(
        config: &GridConfig,
        weather: &WeatherPath,
        calendar: &Calendar,
        noise_u: &[f64],
        lo: usize,
        hi: usize,
    ) -> GridBlock {
        let mut b = GridBlock::with_capacity(hi - lo);
        // `h` indexes four hour-aligned inputs and feeds the calendar math;
        // an iterator chain over one of them would only obscure that.
        #[allow(clippy::needless_range_loop)]
        for h in lo..hi {
            let temp_f = weather.temp_f[h];
            let noise = 1.0 + config.demand_noise * noise_u[h];
            let demand = config.deterministic_demand_mw(calendar, h as u64, temp_f) * noise;

            let wind = config.wind_capacity_mw * weather.wind_factor(h);
            let solar = config.solar_capacity_mw * weather.solar_factor(h);
            let nuclear = config.nuclear_mw * config.nuclear_seasonal(calendar, h as u64);
            let hydro = config.hydro_mean_mw * config.hydro_seasonal(calendar, h as u64);
            let other = config.other_mw;

            // Gas serves the residual; never negative (surplus is exported
            // at zero marginal gas).
            let non_gas = wind + solar + nuclear + hydro + other;
            let gas = (demand - non_gas).max(0.0);
            let total = non_gas + gas;

            let green = (wind + solar) / total;
            let utilization = demand / (config.base_demand_mw * 1.8);
            let lmp = price::lmp_usd_mwh(&config.price, calendar, h as u64, utilization);
            let ci = carbon::grid_intensity_kg_mwh(
                &[
                    (FuelSource::Gas, gas),
                    (FuelSource::Nuclear, nuclear),
                    (FuelSource::Hydro, hydro),
                    (FuelSource::Wind, wind),
                    (FuelSource::Solar, solar),
                    (FuelSource::Other, other),
                ],
                config.fossil_emission_mult,
            );

            b.demand_mw.push(demand);
            b.wind_mw.push(wind);
            b.solar_mw.push(solar);
            b.nuclear_mw.push(nuclear);
            b.hydro_mw.push(hydro);
            b.other_mw.push(other);
            b.gas_mw.push(gas);
            b.lmp_usd_mwh.push(lmp);
            b.ci_kg_mwh.push(ci);
            b.green_share.push(green);
        }
        b
    }

    /// The anchoring calendar.
    pub fn calendar(&self) -> &Calendar {
        &self.calendar
    }

    /// Number of hours.
    pub fn hours(&self) -> usize {
        self.demand_mw.len()
    }

    /// Mean carbon intensity (kg/MWh) over the forecast window
    /// `[from, from + window)`, clamped to the path's horizon. A routing
    /// tier reads this as a site's near-term carbon outlook: left-to-right
    /// summation over a fixed window, so the value is a pure function of
    /// `(path, from, window)` — deterministic at any thread count.
    ///
    /// # Panics
    /// If `window` is zero or `from` is past the horizon.
    pub fn window_mean_ci(&self, from: usize, window: usize) -> f64 {
        Self::window_mean(&self.ci_kg_mwh, from, window)
    }

    /// Mean locational marginal price ($/MWh) over the forecast window
    /// `[from, from + window)`, clamped to the horizon — the price
    /// counterpart of [`GridPath::window_mean_ci`].
    ///
    /// # Panics
    /// If `window` is zero or `from` is past the horizon.
    pub fn window_mean_price(&self, from: usize, window: usize) -> f64 {
        Self::window_mean(&self.lmp_usd_mwh, from, window)
    }

    fn window_mean(series: &[f64], from: usize, window: usize) -> f64 {
        assert!(window > 0, "forecast window must be at least one hour");
        assert!(
            from < series.len(),
            "window start {from} past horizon {}",
            series.len()
        );
        let end = (from + window).min(series.len());
        let slice = &series[from..end];
        slice.iter().sum::<f64>() / slice.len() as f64
    }

    /// Green share as a percentage series (Fig. 2/3 y₂-axis).
    pub fn green_share_pct_series(&self) -> HourlySeries {
        HourlySeries::from_values(
            self.calendar,
            self.green_share.iter().map(|g| g * 100.0).collect(),
        )
    }

    /// LMP as an [`HourlySeries`] (Fig. 3 y₁-axis).
    pub fn lmp_series(&self) -> HourlySeries {
        HourlySeries::from_values(self.calendar, self.lmp_usd_mwh.clone())
    }

    /// Carbon intensity as an [`HourlySeries`].
    pub fn ci_series(&self) -> HourlySeries {
        HourlySeries::from_values(self.calendar, self.ci_kg_mwh.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greener_climate::WeatherConfig;
    use greener_simkit::calendar::CalDate;
    use greener_simkit::series::MonthlyAgg;

    fn year_grid(seed: u64) -> GridPath {
        let cal = Calendar::new(CalDate::new(2020, 1, 1));
        let hub = RngHub::new(seed);
        let weather = WeatherPath::generate(&WeatherConfig::default(), cal, 366 * 24, &hub);
        GridPath::generate(&GridConfig::default(), &weather, &hub)
    }

    #[test]
    fn generation_balances_demand_when_gas_positive() {
        let g = year_grid(1);
        for h in (0..g.hours()).step_by(173) {
            let total = g.wind_mw[h]
                + g.solar_mw[h]
                + g.nuclear_mw[h]
                + g.hydro_mw[h]
                + g.other_mw[h]
                + g.gas_mw[h];
            if g.gas_mw[h] > 0.0 {
                assert!(
                    (total - g.demand_mw[h]).abs() < 1e-6,
                    "hour {h}: total {total} vs demand {}",
                    g.demand_mw[h]
                );
            } else {
                assert!(total >= g.demand_mw[h] - 1e-6);
            }
        }
    }

    #[test]
    fn green_share_spring_exceeds_summer() {
        let g = year_grid(2);
        let rows = g.green_share_pct_series().monthly(MonthlyAgg::Mean);
        let spring: f64 = (2..5).map(|i| rows[i].value).sum::<f64>() / 3.0; // Mar-May
        let summer: f64 = (5..8).map(|i| rows[i].value).sum::<f64>() / 3.0; // Jun-Aug
        assert!(
            spring > summer + 1.5,
            "spring {spring:.2}% vs summer {summer:.2}%"
        );
        // Bands loosely matching Fig. 2's 4.5–8.5% axis.
        assert!(spring > 6.0 && spring < 12.0, "spring {spring:.2}%");
        assert!(summer > 3.0 && summer < 7.0, "summer {summer:.2}%");
    }

    #[test]
    fn summer_demand_exceeds_spring() {
        let g = year_grid(3);
        let rows =
            HourlySeries::from_values(*g.calendar(), g.demand_mw.clone()).monthly(MonthlyAgg::Mean);
        let apr = rows[3].value;
        let jul = rows[6].value;
        assert!(jul > apr * 1.1, "Jul {jul:.0} MW vs Apr {apr:.0} MW");
    }

    #[test]
    fn price_spring_is_cheapest_season() {
        let g = year_grid(4);
        let rows = g.lmp_series().monthly(MonthlyAgg::Mean);
        let spring = (rows[2].value + rows[3].value + rows[4].value) / 3.0;
        let winter = (rows[0].value + rows[1].value + rows[11].value) / 3.0;
        let summer = (rows[5].value + rows[6].value + rows[7].value) / 3.0;
        assert!(spring < winter, "spring {spring:.1} vs winter {winter:.1}");
        assert!(spring < summer, "spring {spring:.1} vs summer {summer:.1}");
        // Fig. 3 bands: spring $20–25, winter up to ~$45–50.
        assert!(spring > 15.0 && spring < 30.0, "spring {spring:.1}");
        assert!(winter > 30.0 && winter < 60.0, "winter {winter:.1}");
    }

    #[test]
    fn price_anticorrelates_with_green_share_monthly() {
        let g = year_grid(5);
        let lmp: Vec<f64> = g
            .lmp_series()
            .monthly(MonthlyAgg::Mean)
            .iter()
            .map(|r| r.value)
            .collect();
        let green: Vec<f64> = g
            .green_share_pct_series()
            .monthly(MonthlyAgg::Mean)
            .iter()
            .map(|r| r.value)
            .collect();
        let r = greener_simkit::stats::pearson(&lmp, &green);
        assert!(r < -0.3, "expected inverse price↔green, r = {r:.2}");
    }

    #[test]
    fn carbon_intensity_within_iso_ne_band() {
        let g = year_grid(6);
        let mean_ci = greener_simkit::stats::mean(&g.ci_kg_mwh);
        assert!(
            (150.0..450.0).contains(&mean_ci),
            "mean grid CI {mean_ci:.0} kg/MWh"
        );
    }

    #[test]
    fn fossil_mult_raises_ci() {
        let cal = Calendar::new(CalDate::new(2020, 1, 1));
        let hub = RngHub::new(9);
        let weather = WeatherPath::generate(&WeatherConfig::default(), cal, 90 * 24, &hub);
        let base = GridPath::generate(&GridConfig::default(), &weather, &hub);
        let shocked = GridPath::generate(
            &GridConfig {
                fossil_emission_mult: 1.5,
                ..GridConfig::default()
            },
            &weather,
            &hub,
        );
        assert!(
            greener_simkit::stats::mean(&shocked.ci_kg_mwh)
                > greener_simkit::stats::mean(&base.ci_kg_mwh) * 1.2
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = year_grid(7);
        let b = year_grid(7);
        assert_eq!(a.lmp_usd_mwh, b.lmp_usd_mwh);
        assert_eq!(a.green_share, b.green_share);
    }

    #[test]
    fn parallel_generation_is_bit_identical() {
        let cal = Calendar::new(CalDate::new(2020, 1, 1));
        for seed in [3u64, 20220106] {
            let hub = RngHub::new(seed);
            // 100 days: full weeks plus a partial final shard.
            let weather = WeatherPath::generate(&WeatherConfig::default(), cal, 100 * 24, &hub);
            let seq = GridPath::generate_mode(&GridConfig::default(), &weather, &hub, false);
            let par = GridPath::generate_mode(&GridConfig::default(), &weather, &hub, true);
            assert_eq!(seq.demand_mw, par.demand_mw);
            assert_eq!(seq.gas_mw, par.gas_mw);
            assert_eq!(seq.lmp_usd_mwh, par.lmp_usd_mwh);
            assert_eq!(seq.ci_kg_mwh, par.ci_kg_mwh);
            assert_eq!(seq.green_share, par.green_share);
        }
    }

    #[test]
    fn fuel_source_green_flags() {
        assert!(FuelSource::Wind.is_green());
        assert!(FuelSource::Solar.is_green());
        assert!(!FuelSource::Gas.is_green());
        assert!(!FuelSource::Nuclear.is_green());
        assert_eq!(FuelSource::ALL.len(), 6);
    }
}
