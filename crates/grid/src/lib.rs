//! # greener-grid
//!
//! Electricity-grid substrate: an ISO-New-England-like model of the power
//! system feeding the datacenter in *"A Green(er) World for A.I."*.
//!
//! Section II-A of the paper studies the *fuel mix* of supplied power (the
//! share generated from solar and wind), locational marginal prices (LMP)
//! and the environmental opportunity cost of buying power when the mix is
//! dirty. Figures 2 and 3 plot monthly power/price against the monthly green
//! share. This crate reproduces that environment:
//!
//! * [`mix`] — regional demand and fuel-mix dispatch (gas, nuclear, hydro,
//!   wind, solar, other) driven by the weather path from `greener-climate`;
//!   the green share emerges from seasonal wind/solar capacity factors.
//! * [`price`] — a merit-order LMP model: seasonal gas prices × a heat-rate
//!   curve rising with system utilization.
//! * [`carbon`] — per-fuel emission factors and the hourly grid carbon
//!   intensity.
//! * [`storage`] — a battery model for the "store green energy" strategy.
//! * [`ledger`] — energy-purchase records and aggregate cost/carbon totals.

pub mod carbon;
pub mod ledger;
pub mod mix;
pub mod price;
pub mod storage;

pub use carbon::EMISSION_FACTORS_KG_PER_MWH;
pub use ledger::{PurchaseLedger, PurchaseRecord};
pub use mix::{FuelSource, GridConfig, GridPath};
pub use storage::{Battery, BatteryConfig};
