//! Battery storage.
//!
//! Section II-A's second strategy: "store that energy to help offset energy
//! consumption during times where the fuel mix is less sustainably sourced."
//! [`Battery`] models a grid-tied battery with power limits, round-trip
//! losses and self-discharge; the purchasing strategies in `greener-core`
//! charge it in green/cheap hours and discharge in dirty/expensive ones.

use greener_simkit::units::Energy;
use serde::{Deserialize, Serialize};

/// Battery parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatteryConfig {
    /// Usable capacity, kWh.
    pub capacity_kwh: f64,
    /// Maximum charging power, kW.
    pub max_charge_kw: f64,
    /// Maximum discharging power, kW.
    pub max_discharge_kw: f64,
    /// Round-trip efficiency in (0, 1]; split evenly between legs.
    pub round_trip_efficiency: f64,
    /// Self-discharge per hour as a fraction of state of charge.
    pub self_discharge_per_hour: f64,
}

impl Default for BatteryConfig {
    fn default() -> Self {
        BatteryConfig {
            capacity_kwh: 2_000.0,
            max_charge_kw: 500.0,
            max_discharge_kw: 500.0,
            round_trip_efficiency: 0.88,
            self_discharge_per_hour: 1e-4,
        }
    }
}

/// A stateful battery.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Battery {
    config: BatteryConfig,
    soc_kwh: f64,
    /// Total energy drawn from the grid while charging (includes losses).
    pub total_charged: Energy,
    /// Total energy delivered to the load while discharging.
    pub total_discharged: Energy,
    /// Number of full-equivalent cycles so far.
    pub equivalent_cycles: f64,
}

impl Battery {
    /// A new battery at zero state of charge.
    pub fn new(config: BatteryConfig) -> Battery {
        assert!(config.capacity_kwh > 0.0, "capacity must be positive");
        assert!(
            config.round_trip_efficiency > 0.0 && config.round_trip_efficiency <= 1.0,
            "round-trip efficiency must be in (0,1]"
        );
        Battery {
            config,
            soc_kwh: 0.0,
            total_charged: Energy::ZERO,
            total_discharged: Energy::ZERO,
            equivalent_cycles: 0.0,
        }
    }

    /// Parameters.
    pub fn config(&self) -> &BatteryConfig {
        &self.config
    }

    /// Current state of charge, kWh.
    pub fn soc_kwh(&self) -> f64 {
        self.soc_kwh
    }

    /// State of charge as a fraction of capacity.
    pub fn soc_fraction(&self) -> f64 {
        self.soc_kwh / self.config.capacity_kwh
    }

    /// Remaining headroom, kWh.
    pub fn headroom_kwh(&self) -> f64 {
        (self.config.capacity_kwh - self.soc_kwh).max(0.0)
    }

    /// One-leg efficiency (square root of the round trip).
    fn leg_efficiency(&self) -> f64 {
        self.config.round_trip_efficiency.sqrt()
    }

    /// Charge for `hours` at up to `power_kw`. Returns the energy *drawn
    /// from the grid* (before losses), respecting power and capacity limits.
    pub fn charge(&mut self, power_kw: f64, hours: f64) -> Energy {
        debug_assert!(power_kw >= 0.0 && hours >= 0.0);
        let p = power_kw.min(self.config.max_charge_kw);
        let eff = self.leg_efficiency();
        // Energy that would land in the cell.
        let stored_wanted = p * hours * eff;
        let stored = stored_wanted.min(self.headroom_kwh());
        if stored <= 0.0 {
            return Energy::ZERO;
        }
        self.soc_kwh += stored;
        let drawn = Energy::from_kwh(stored / eff);
        self.total_charged += drawn;
        self.equivalent_cycles += stored / self.config.capacity_kwh / 2.0;
        drawn
    }

    /// Discharge for `hours` at up to `power_kw`. Returns the energy
    /// *delivered to the load* (after losses), respecting limits.
    pub fn discharge(&mut self, power_kw: f64, hours: f64) -> Energy {
        debug_assert!(power_kw >= 0.0 && hours >= 0.0);
        let p = power_kw.min(self.config.max_discharge_kw);
        let eff = self.leg_efficiency();
        // Delivering E requires E/eff from the cell.
        let delivered_wanted = p * hours;
        let delivered = delivered_wanted.min(self.soc_kwh * eff);
        if delivered <= 0.0 {
            return Energy::ZERO;
        }
        self.soc_kwh -= delivered / eff;
        let out = Energy::from_kwh(delivered);
        self.total_discharged += out;
        self.equivalent_cycles += (delivered / eff) / self.config.capacity_kwh / 2.0;
        out
    }

    /// Apply self-discharge for `hours`.
    pub fn tick(&mut self, hours: f64) {
        let keep = (1.0 - self.config.self_discharge_per_hour).powf(hours);
        self.soc_kwh *= keep;
    }

    /// Realized round-trip efficiency so far (NaN before first discharge).
    pub fn realized_efficiency(&self) -> f64 {
        self.total_discharged.kwh() / self.total_charged.kwh()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batt() -> Battery {
        Battery::new(BatteryConfig::default())
    }

    #[test]
    fn charge_respects_power_and_capacity() {
        let mut b = batt();
        // Ask for 10x the power limit for 1h.
        let drawn = b.charge(5_000.0, 1.0);
        // Only 500 kW accepted; stored = 500·√0.88.
        let eff = 0.88f64.sqrt();
        assert!((drawn.kwh() - 500.0).abs() < 1e-9);
        assert!((b.soc_kwh() - 500.0 * eff).abs() < 1e-9);
        // Fill to capacity: SOC never exceeds it.
        for _ in 0..20 {
            b.charge(500.0, 1.0);
        }
        assert!(b.soc_kwh() <= b.config().capacity_kwh + 1e-9);
        assert!((b.soc_fraction() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn discharge_bounded_by_soc() {
        let mut b = batt();
        b.charge(500.0, 2.0); // ~938 kWh stored
        let soc = b.soc_kwh();
        let out = b.discharge(500.0, 10.0); // ask for far more than stored
        let eff = 0.88f64.sqrt();
        assert!((out.kwh() - soc * eff).abs() < 1e-6);
        assert!(b.soc_kwh() < 1e-9);
    }

    #[test]
    fn round_trip_efficiency_realized() {
        let mut b = batt();
        b.charge(500.0, 2.0);
        while b.soc_kwh() > 1e-9 {
            if b.discharge(500.0, 1.0).kwh() <= 0.0 {
                break;
            }
        }
        let rte = b.realized_efficiency();
        assert!((rte - 0.88).abs() < 1e-6, "realized RTE {rte}");
    }

    #[test]
    fn self_discharge_decays() {
        let mut b = batt();
        b.charge(500.0, 1.0);
        let before = b.soc_kwh();
        b.tick(100.0);
        let after = b.soc_kwh();
        assert!(after < before);
        assert!(after > before * 0.98);
    }

    #[test]
    fn zero_requests_are_noops() {
        let mut b = batt();
        assert_eq!(b.charge(0.0, 1.0).kwh(), 0.0);
        assert_eq!(b.discharge(0.0, 1.0).kwh(), 0.0);
        assert_eq!(b.discharge(500.0, 1.0).kwh(), 0.0); // empty battery
        assert_eq!(b.soc_kwh(), 0.0);
    }

    #[test]
    fn cycles_accumulate() {
        let mut b = batt();
        b.charge(500.0, 4.0);
        b.discharge(500.0, 4.0);
        assert!(b.equivalent_cycles > 0.5 && b.equivalent_cycles < 2.0);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// SOC stays within [0, capacity] under arbitrary operation
            /// sequences, and delivered energy never exceeds drawn energy.
            #[test]
            fn soc_invariant(ops in prop::collection::vec((0u8..3, 0.0f64..1_000.0, 0.0f64..4.0), 1..60)) {
                let mut b = batt();
                for (op, power, hours) in ops {
                    match op {
                        0 => { b.charge(power, hours); }
                        1 => { b.discharge(power, hours); }
                        _ => { b.tick(hours); }
                    }
                    prop_assert!(b.soc_kwh() >= -1e-9);
                    prop_assert!(b.soc_kwh() <= b.config().capacity_kwh + 1e-9);
                }
                prop_assert!(b.total_discharged.kwh() <= b.total_charged.kwh() + 1e-6);
            }
        }
    }
}
