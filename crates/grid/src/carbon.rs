//! Per-fuel emission factors and grid carbon intensity.
//!
//! Lifecycle emission factors (kg CO₂-eq per MWh) follow IPCC AR5 median
//! values for the clean fuels and ISO-NE-typical stack emissions for the
//! fossil ones. The hourly grid carbon intensity is the generation-weighted
//! average — the quantity a carbon-aware scheduler (§II-A, ref \[16\]) keys on.

use crate::mix::FuelSource;

/// (fuel, kg CO₂-eq per MWh) lifecycle emission factors.
pub const EMISSION_FACTORS_KG_PER_MWH: [(FuelSource, f64); 6] = [
    (FuelSource::Gas, 410.0),
    (FuelSource::Nuclear, 12.0),
    (FuelSource::Hydro, 24.0),
    (FuelSource::Wind, 11.0),
    (FuelSource::Solar, 41.0),
    (FuelSource::Other, 560.0), // refuse/wood/oil peaker blend
];

/// Emission factor for one fuel, kg CO₂ per MWh.
pub fn emission_factor(fuel: FuelSource) -> f64 {
    EMISSION_FACTORS_KG_PER_MWH
        .iter()
        .find(|(f, _)| *f == fuel)
        .map(|(_, e)| *e)
        .expect("all fuels have factors")
}

/// True if the fuel counts as fossil for stress-scenario scaling.
pub fn is_fossil(fuel: FuelSource) -> bool {
    matches!(fuel, FuelSource::Gas | FuelSource::Other)
}

/// Generation-weighted carbon intensity, kg CO₂ per MWh.
///
/// `fossil_mult` scales fossil factors (carbon-intensity stress shock);
/// returns 0 for an all-zero generation vector.
pub fn grid_intensity_kg_mwh(generation_mw: &[(FuelSource, f64)], fossil_mult: f64) -> f64 {
    let mut total = 0.0;
    let mut weighted = 0.0;
    for &(fuel, mw) in generation_mw {
        let mut ef = emission_factor(fuel);
        if is_fossil(fuel) {
            ef *= fossil_mult;
        }
        total += mw;
        weighted += mw * ef;
    }
    if total <= 0.0 {
        0.0
    } else {
        weighted / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factors_cover_all_fuels() {
        for fuel in FuelSource::ALL {
            assert!(emission_factor(fuel) >= 0.0);
        }
    }

    #[test]
    fn green_fuels_are_cleanest() {
        assert!(emission_factor(FuelSource::Wind) < emission_factor(FuelSource::Gas) / 10.0);
        assert!(emission_factor(FuelSource::Solar) < emission_factor(FuelSource::Gas) / 5.0);
    }

    #[test]
    fn intensity_is_weighted_average() {
        // 50/50 gas and wind.
        let ci = grid_intensity_kg_mwh(&[(FuelSource::Gas, 100.0), (FuelSource::Wind, 100.0)], 1.0);
        assert!((ci - (410.0 + 11.0) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn all_gas_equals_gas_factor() {
        let ci = grid_intensity_kg_mwh(&[(FuelSource::Gas, 50.0)], 1.0);
        assert!((ci - 410.0).abs() < 1e-9);
    }

    #[test]
    fn fossil_mult_only_scales_fossil() {
        let clean = grid_intensity_kg_mwh(&[(FuelSource::Wind, 100.0)], 2.0);
        assert!((clean - 11.0).abs() < 1e-9);
        let dirty = grid_intensity_kg_mwh(&[(FuelSource::Gas, 100.0)], 2.0);
        assert!((dirty - 820.0).abs() < 1e-9);
    }

    #[test]
    fn zero_generation_is_zero_intensity() {
        assert_eq!(grid_intensity_kg_mwh(&[], 1.0), 0.0);
        assert_eq!(grid_intensity_kg_mwh(&[(FuelSource::Gas, 0.0)], 1.0), 0.0);
    }
}
