//! Locational marginal price (LMP) model.
//!
//! ISO-NE prices are set by the marginal unit, which is almost always
//! natural gas. The model therefore prices energy as
//! `LMP = gas_price × heat_rate(utilization) + adders`, with a seasonal gas
//! price (winter pipeline constraints spike it) and a convex heat-rate curve
//! (high system utilization dispatches less efficient units). This yields
//! Fig. 3's shape: the cheapest power of the year lands in Feb–May
//! ($20–25/MWh) exactly when the green share peaks, and the most expensive
//! in deep winter.

use greener_simkit::calendar::Calendar;
use greener_simkit::time::SimTime;
use serde::{Deserialize, Serialize};

/// Price-model parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PriceConfig {
    /// Mid-month natural gas price anchors, $/MMBtu (Jan..Dec).
    pub gas_price_usd_mmbtu: [f64; 12],
    /// Base (no-congestion) heat rate, MMBtu/MWh.
    pub heat_rate_base: f64,
    /// Convex heat-rate growth with utilization.
    pub heat_rate_slope: f64,
    /// Flat transmission/uplift adder, $/MWh.
    pub adder_usd_mwh: f64,
    /// Multiplier applied to the whole price (stress scenarios).
    pub price_mult: f64,
}

impl Default for PriceConfig {
    fn default() -> Self {
        PriceConfig {
            // Winter pipeline scarcity (Dec–Feb) vs. cheap shoulder gas.
            gas_price_usd_mmbtu: [6.2, 3.6, 2.5, 2.3, 2.2, 2.5, 2.9, 2.9, 2.6, 2.8, 3.6, 5.2],
            heat_rate_base: 7.0,
            heat_rate_slope: 5.0,
            adder_usd_mwh: 2.0,
            price_mult: 1.0,
        }
    }
}

/// Hourly LMP in $/MWh.
///
/// `utilization` is regional demand relative to dispatchable capacity
/// (≈ demand / 1.8·base); values above ~0.8 climb steeply.
pub fn lmp_usd_mwh(config: &PriceConfig, calendar: &Calendar, hour: u64, utilization: f64) -> f64 {
    let gas = greener_climate::weather::interp_monthly(
        &config.gas_price_usd_mmbtu,
        calendar,
        SimTime::from_hours(hour),
    );
    let u = utilization.clamp(0.0, 1.5);
    let heat_rate = config.heat_rate_base + config.heat_rate_slope * u * u;
    (gas * heat_rate + config.adder_usd_mwh) * config.price_mult
}

#[cfg(test)]
mod tests {
    use super::*;
    use greener_simkit::calendar::CalDate;

    fn cal() -> Calendar {
        Calendar::new(CalDate::new(2020, 1, 1))
    }

    #[test]
    fn winter_beats_spring() {
        let c = PriceConfig::default();
        // Mid January (hour of day 12 of day 15) vs mid April.
        let jan = lmp_usd_mwh(&c, &cal(), 15 * 24 + 12, 0.6);
        let apr = lmp_usd_mwh(&c, &cal(), 105 * 24 + 12, 0.5);
        assert!(jan > apr * 1.6, "jan {jan:.1} vs apr {apr:.1}");
        // Fig. 3 magnitudes.
        assert!((35.0..65.0).contains(&jan), "jan {jan:.1}");
        assert!((15.0..30.0).contains(&apr), "apr {apr:.1}");
    }

    #[test]
    fn utilization_raises_price_convexly() {
        let c = PriceConfig::default();
        let p3 = lmp_usd_mwh(&c, &cal(), 200 * 24, 0.3);
        let p6 = lmp_usd_mwh(&c, &cal(), 200 * 24, 0.6);
        let p9 = lmp_usd_mwh(&c, &cal(), 200 * 24, 0.9);
        assert!(p6 > p3);
        assert!(p9 - p6 > p6 - p3, "convexity violated");
    }

    #[test]
    fn price_mult_scales_linearly() {
        let mut c = PriceConfig::default();
        let base = lmp_usd_mwh(&c, &cal(), 1000, 0.5);
        c.price_mult = 3.0;
        let shocked = lmp_usd_mwh(&c, &cal(), 1000, 0.5);
        assert!((shocked / base - 3.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_clamped() {
        let c = PriceConfig::default();
        let hi = lmp_usd_mwh(&c, &cal(), 0, 99.0);
        let clamp = lmp_usd_mwh(&c, &cal(), 0, 1.5);
        assert!((hi - clamp).abs() < 1e-9);
        let neg = lmp_usd_mwh(&c, &cal(), 0, -5.0);
        let zero = lmp_usd_mwh(&c, &cal(), 0, 0.0);
        assert!((neg - zero).abs() < 1e-9);
    }
}
