//! Energy-purchase ledger.
//!
//! Every kWh the datacenter draws is recorded with the grid conditions at
//! purchase time (price, carbon intensity, green share). The ledger is what
//! makes the paper's *opportunity cost* analysis possible: the same total
//! energy bought at different times carries different fiscal and
//! environmental cost, and the delta to the best feasible timing is the
//! opportunity cost (§II-A).

use greener_simkit::units::{Dollars, Energy, KgCo2};
use serde::{Deserialize, Serialize};

/// One purchase record (typically one simulated hour).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PurchaseRecord {
    /// Hour index of the purchase.
    pub hour: u64,
    /// Energy drawn from the grid.
    pub energy: Energy,
    /// Locational marginal price at purchase time, $/MWh.
    pub lmp_usd_mwh: f64,
    /// Grid carbon intensity at purchase time, kg/MWh.
    pub ci_kg_mwh: f64,
    /// Green (solar+wind) share of the grid at purchase time, in \[0,1\].
    pub green_share: f64,
}

impl PurchaseRecord {
    /// Fiscal cost of this purchase.
    pub fn cost(&self) -> Dollars {
        self.energy.cost_at(self.lmp_usd_mwh)
    }

    /// Carbon embodied in this purchase.
    pub fn carbon(&self) -> KgCo2 {
        self.energy.carbon_at(self.ci_kg_mwh)
    }
}

/// Append-only purchase ledger with aggregate queries.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PurchaseLedger {
    records: Vec<PurchaseRecord>,
}

impl PurchaseLedger {
    /// An empty ledger.
    pub fn new() -> PurchaseLedger {
        PurchaseLedger::default()
    }

    /// Record a purchase.
    pub fn record(&mut self, rec: PurchaseRecord) {
        self.records.push(rec);
    }

    /// All records, in insertion order.
    pub fn records(&self) -> &[PurchaseRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no purchases have been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total energy purchased.
    pub fn total_energy(&self) -> Energy {
        self.records.iter().map(|r| r.energy).sum()
    }

    /// Total fiscal cost.
    pub fn total_cost(&self) -> Dollars {
        self.records.iter().map(|r| r.cost()).sum()
    }

    /// Total embodied carbon.
    pub fn total_carbon(&self) -> KgCo2 {
        self.records.iter().map(|r| r.carbon()).sum()
    }

    /// Energy-weighted average green share of purchases.
    pub fn energy_weighted_green_share(&self) -> f64 {
        let total = self.total_energy().kwh();
        if total <= 0.0 {
            return f64::NAN;
        }
        self.records
            .iter()
            .map(|r| r.green_share * r.energy.kwh())
            .sum::<f64>()
            / total
    }

    /// Energy-weighted average price, $/MWh.
    pub fn energy_weighted_price(&self) -> f64 {
        let total = self.total_energy().mwh();
        if total <= 0.0 {
            return f64::NAN;
        }
        self.total_cost().value() / total
    }

    /// Energy-weighted average carbon intensity, kg/MWh.
    pub fn energy_weighted_ci(&self) -> f64 {
        let total = self.total_energy().mwh();
        if total <= 0.0 {
            return f64::NAN;
        }
        self.total_carbon().value() / total
    }

    /// The cheapest possible carbon for the *same total energy* if it could
    /// have been freely re-timed across the recorded hours subject to a
    /// per-hour cap of `max_mult ×` the actual hourly energy. The difference
    /// to [`Self::total_carbon`] is the environmental opportunity cost.
    pub fn counterfactual_min_carbon(&self, max_mult: f64) -> KgCo2 {
        assert!(
            max_mult >= 1.0,
            "hourly cap must allow at least actual energy"
        );
        let total = self.total_energy().kwh();
        if total <= 0.0 {
            return KgCo2::ZERO;
        }
        // Greedy: fill the cleanest hours first up to their caps.
        let mut hours: Vec<&PurchaseRecord> = self.records.iter().collect();
        hours.sort_by(|a, b| a.ci_kg_mwh.partial_cmp(&b.ci_kg_mwh).expect("finite CI"));
        let mut remaining = total;
        let mut carbon = 0.0;
        for rec in hours {
            if remaining <= 0.0 {
                break;
            }
            let cap = rec.energy.kwh() * max_mult;
            let take = cap.min(remaining);
            carbon += Energy::from_kwh(take).carbon_at(rec.ci_kg_mwh).value();
            remaining -= take;
        }
        // If caps don't absorb everything (max_mult too small relative to
        // skew), charge the remainder at the dirtiest hour's intensity.
        if remaining > 0.0 {
            let worst = self
                .records
                .iter()
                .map(|r| r.ci_kg_mwh)
                .fold(f64::NEG_INFINITY, f64::max);
            carbon += Energy::from_kwh(remaining).carbon_at(worst).value();
        }
        KgCo2(carbon)
    }

    /// Same counterfactual for fiscal cost (cheapest hours first).
    pub fn counterfactual_min_cost(&self, max_mult: f64) -> Dollars {
        assert!(max_mult >= 1.0);
        let total = self.total_energy().kwh();
        if total <= 0.0 {
            return Dollars::ZERO;
        }
        let mut hours: Vec<&PurchaseRecord> = self.records.iter().collect();
        hours.sort_by(|a, b| {
            a.lmp_usd_mwh
                .partial_cmp(&b.lmp_usd_mwh)
                .expect("finite LMP")
        });
        let mut remaining = total;
        let mut cost = 0.0;
        for rec in hours {
            if remaining <= 0.0 {
                break;
            }
            let take = (rec.energy.kwh() * max_mult).min(remaining);
            cost += Energy::from_kwh(take).cost_at(rec.lmp_usd_mwh).value();
            remaining -= take;
        }
        if remaining > 0.0 {
            let worst = self
                .records
                .iter()
                .map(|r| r.lmp_usd_mwh)
                .fold(f64::NEG_INFINITY, f64::max);
            cost += Energy::from_kwh(remaining).cost_at(worst).value();
        }
        Dollars(cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(hour: u64, kwh: f64, lmp: f64, ci: f64, green: f64) -> PurchaseRecord {
        PurchaseRecord {
            hour,
            energy: Energy::from_kwh(kwh),
            lmp_usd_mwh: lmp,
            ci_kg_mwh: ci,
            green_share: green,
        }
    }

    fn sample_ledger() -> PurchaseLedger {
        let mut l = PurchaseLedger::new();
        l.record(rec(0, 100.0, 50.0, 400.0, 0.04)); // dirty, expensive
        l.record(rec(1, 100.0, 20.0, 200.0, 0.08)); // clean, cheap
        l
    }

    #[test]
    fn totals() {
        let l = sample_ledger();
        assert!((l.total_energy().kwh() - 200.0).abs() < 1e-9);
        // 0.1 MWh·50 + 0.1 MWh·20 = 7 $.
        assert!((l.total_cost().value() - 7.0).abs() < 1e-9);
        // 0.1·400 + 0.1·200 = 60 kg.
        assert!((l.total_carbon().value() - 60.0).abs() < 1e-9);
    }

    #[test]
    fn weighted_averages() {
        let l = sample_ledger();
        assert!((l.energy_weighted_green_share() - 0.06).abs() < 1e-12);
        assert!((l.energy_weighted_price() - 35.0).abs() < 1e-9);
        assert!((l.energy_weighted_ci() - 300.0).abs() < 1e-9);
        assert!(PurchaseLedger::new().energy_weighted_price().is_nan());
    }

    #[test]
    fn counterfactual_shifts_to_clean_hours() {
        let l = sample_ledger();
        // With 2x hourly headroom all 200 kWh fit in the clean hour.
        let cf = l.counterfactual_min_carbon(2.0);
        assert!((cf.value() - 0.2 * 200.0).abs() < 1e-9);
        // Opportunity cost = 60 - 40 = 20 kg.
        assert!((l.total_carbon().value() - cf.value() - 20.0).abs() < 1e-9);
        // Cost counterfactual: all at $20 → $4.
        let cc = l.counterfactual_min_cost(2.0);
        assert!((cc.value() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn counterfactual_never_exceeds_actual() {
        let l = sample_ledger();
        for mult in [1.0, 1.5, 3.0] {
            assert!(l.counterfactual_min_carbon(mult).value() <= l.total_carbon().value() + 1e-9);
            assert!(l.counterfactual_min_cost(mult).value() <= l.total_cost().value() + 1e-9);
        }
    }

    #[test]
    fn unit_mult_reproduces_actual_totals() {
        // With max_mult = 1 every hour can only hold what it actually held,
        // so the counterfactual equals reality.
        let l = sample_ledger();
        assert!((l.counterfactual_min_carbon(1.0).value() - l.total_carbon().value()).abs() < 1e-9);
        assert!((l.counterfactual_min_cost(1.0).value() - l.total_cost().value()).abs() < 1e-9);
    }

    #[test]
    fn empty_ledger_is_safe() {
        let l = PurchaseLedger::new();
        assert!(l.is_empty());
        assert_eq!(l.total_energy().kwh(), 0.0);
        assert_eq!(l.counterfactual_min_carbon(2.0).value(), 0.0);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The counterfactual is monotone non-increasing in headroom and
            /// always bounded by the actual totals.
            #[test]
            fn counterfactual_monotone(
                kwh in prop::collection::vec(1.0f64..500.0, 1..40),
                cis in prop::collection::vec(50.0f64..800.0, 1..40),
            ) {
                let n = kwh.len().min(cis.len());
                let mut l = PurchaseLedger::new();
                for i in 0..n {
                    l.record(rec(i as u64, kwh[i], 30.0, cis[i], 0.05));
                }
                let actual = l.total_carbon().value();
                let c1 = l.counterfactual_min_carbon(1.0).value();
                let c2 = l.counterfactual_min_carbon(2.0).value();
                let c4 = l.counterfactual_min_carbon(4.0).value();
                prop_assert!((c1 - actual).abs() < 1e-6);
                prop_assert!(c2 <= c1 + 1e-6);
                prop_assert!(c4 <= c2 + 1e-6);
            }
        }
    }
}
