//! Forecast-accuracy metrics.

/// Mean absolute error. NaN on empty or mismatched input.
pub fn mae(actual: &[f64], forecast: &[f64]) -> f64 {
    if actual.is_empty() || actual.len() != forecast.len() {
        return f64::NAN;
    }
    actual
        .iter()
        .zip(forecast)
        .map(|(a, f)| (a - f).abs())
        .sum::<f64>()
        / actual.len() as f64
}

/// Root-mean-square error.
pub fn rmse(actual: &[f64], forecast: &[f64]) -> f64 {
    if actual.is_empty() || actual.len() != forecast.len() {
        return f64::NAN;
    }
    (actual
        .iter()
        .zip(forecast)
        .map(|(a, f)| (a - f) * (a - f))
        .sum::<f64>()
        / actual.len() as f64)
        .sqrt()
}

/// Mean absolute percentage error (%). Skips zero actuals.
pub fn mape(actual: &[f64], forecast: &[f64]) -> f64 {
    if actual.is_empty() || actual.len() != forecast.len() {
        return f64::NAN;
    }
    let mut sum = 0.0;
    let mut n = 0usize;
    for (a, f) in actual.iter().zip(forecast) {
        if a.abs() > 1e-12 {
            sum += ((a - f) / a).abs();
            n += 1;
        }
    }
    if n == 0 {
        f64::NAN
    } else {
        100.0 * sum / n as f64
    }
}

/// Symmetric MAPE (%), bounded in [0, 200].
pub fn smape(actual: &[f64], forecast: &[f64]) -> f64 {
    if actual.is_empty() || actual.len() != forecast.len() {
        return f64::NAN;
    }
    let mut sum = 0.0;
    let mut n = 0usize;
    for (a, f) in actual.iter().zip(forecast) {
        let denom = (a.abs() + f.abs()) / 2.0;
        if denom > 1e-12 {
            sum += (a - f).abs() / denom;
            n += 1;
        }
    }
    if n == 0 {
        f64::NAN
    } else {
        100.0 * sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_forecast_scores_zero() {
        let a = [1.0, 2.0, 3.0];
        assert_eq!(mae(&a, &a), 0.0);
        assert_eq!(rmse(&a, &a), 0.0);
        assert_eq!(mape(&a, &a), 0.0);
        assert_eq!(smape(&a, &a), 0.0);
    }

    #[test]
    fn known_values() {
        let a = [2.0, 4.0];
        let f = [1.0, 6.0];
        assert!((mae(&a, &f) - 1.5).abs() < 1e-12);
        assert!((rmse(&a, &f) - (2.5f64).sqrt()).abs() < 1e-12);
        // MAPE: (0.5 + 0.5)/2 ·100 = 50%.
        assert!((mape(&a, &f) - 50.0).abs() < 1e-12);
    }

    #[test]
    fn rmse_dominates_mae() {
        let a = [0.0, 0.0, 0.0, 0.0];
        let f = [0.0, 0.0, 0.0, 4.0];
        assert!(rmse(&a, &f) >= mae(&a, &f));
    }

    #[test]
    fn mape_skips_zero_actuals() {
        let a = [0.0, 2.0];
        let f = [5.0, 3.0];
        assert!((mape(&a, &f) - 50.0).abs() < 1e-12);
        assert!(mape(&[0.0], &[1.0]).is_nan());
    }

    #[test]
    fn smape_bounded() {
        let a = [1.0, -1.0, 100.0];
        let f = [-1.0, 1.0, -100.0];
        let s = smape(&a, &f);
        assert!(s <= 200.0 + 1e-9);
    }

    #[test]
    fn mismatched_lengths_are_nan() {
        assert!(mae(&[1.0], &[1.0, 2.0]).is_nan());
        assert!(rmse(&[], &[]).is_nan());
    }
}
