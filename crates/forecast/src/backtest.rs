//! Rolling-origin backtesting.
//!
//! The experiment harness scores every forecaster the same way an operator
//! would deploy it: refit on a sliding training window, forecast the next
//! `horizon` hours, advance by `step`, repeat — then average the errors.

use crate::metrics::{mae, mape, rmse, smape};
use crate::model::ForecasterKind;
use serde::{Deserialize, Serialize};

/// Aggregate backtest scores for one model on one series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BacktestReport {
    /// Which model.
    pub kind: ForecasterKind,
    /// Mean absolute error across folds.
    pub mae: f64,
    /// Root-mean-square error across folds.
    pub rmse: f64,
    /// Mean absolute percentage error across folds (%).
    pub mape: f64,
    /// Symmetric MAPE across folds (%).
    pub smape: f64,
    /// Number of folds evaluated.
    pub folds: usize,
}

/// Run a rolling-origin backtest of `kind` over `series`.
///
/// * `train` — training-window length (observations)
/// * `horizon` — forecast length scored per fold
/// * `step` — origin advance between folds
/// * `period` — seasonality passed to the model (24 for hourly)
pub fn backtest(
    kind: ForecasterKind,
    series: &[f64],
    train: usize,
    horizon: usize,
    step: usize,
    period: usize,
) -> Option<BacktestReport> {
    assert!(train > 0 && horizon > 0 && step > 0);
    if series.len() < train + horizon {
        return None;
    }
    let mut maes = Vec::new();
    let mut rmses = Vec::new();
    let mut mapes = Vec::new();
    let mut smapes = Vec::new();
    let mut origin = train;
    while origin + horizon <= series.len() {
        let hist = &series[origin - train..origin];
        let actual = &series[origin..origin + horizon];
        let mut model = kind.build(period);
        model.fit(hist);
        let forecast = model.forecast(horizon);
        maes.push(mae(actual, &forecast));
        rmses.push(rmse(actual, &forecast));
        mapes.push(mape(actual, &forecast));
        smapes.push(smape(actual, &forecast));
        origin += step;
    }
    if maes.is_empty() {
        return None;
    }
    let avg = |v: &[f64]| {
        let finite: Vec<f64> = v.iter().copied().filter(|x| x.is_finite()).collect();
        if finite.is_empty() {
            f64::NAN
        } else {
            finite.iter().sum::<f64>() / finite.len() as f64
        }
    };
    Some(BacktestReport {
        kind,
        mae: avg(&maes),
        rmse: avg(&rmses),
        mape: avg(&mapes),
        smape: avg(&smapes),
        folds: maes.len(),
    })
}

/// Backtest every built-in model and return reports sorted by MAE.
pub fn backtest_all(
    series: &[f64],
    train: usize,
    horizon: usize,
    step: usize,
    period: usize,
) -> Vec<BacktestReport> {
    let mut out: Vec<BacktestReport> = ForecasterKind::ALL
        .iter()
        .filter_map(|&k| backtest(k, series, train, horizon, step, period))
        .collect();
    out.sort_by(|a, b| a.mae.partial_cmp(&b.mae).expect("finite MAE"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seasonal_series(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                20.0 + 5.0 * (i as f64 / 24.0 * std::f64::consts::TAU).sin()
                    + 0.5 * ((i * 7919) % 13) as f64 / 13.0
            })
            .collect()
    }

    #[test]
    fn backtest_produces_folds() {
        let s = seasonal_series(24 * 20);
        let r = backtest(ForecasterKind::SeasonalNaive, &s, 24 * 7, 24, 24, 24).unwrap();
        assert!(r.folds > 5);
        assert!(r.mae.is_finite() && r.mae >= 0.0);
        assert!(r.rmse >= r.mae);
    }

    #[test]
    fn too_short_series_is_none() {
        let s = seasonal_series(30);
        assert!(backtest(ForecasterKind::Mean, &s, 48, 24, 24, 24).is_none());
    }

    #[test]
    fn seasonal_models_win_on_seasonal_series() {
        let s = seasonal_series(24 * 30);
        let reports = backtest_all(&s, 24 * 7, 24, 48, 24);
        assert!(reports.len() >= 6);
        let best = reports[0];
        // A season-aware model (seasonal-naive, HW, or AR with 24 lags)
        // must beat the plain mean.
        let mean_mae = reports
            .iter()
            .find(|r| r.kind == ForecasterKind::Mean)
            .unwrap()
            .mae;
        assert!(
            best.mae < mean_mae * 0.6,
            "best {:?} {:.3} vs mean {:.3}",
            best.kind,
            best.mae,
            mean_mae
        );
        assert!(matches!(
            best.kind,
            ForecasterKind::SeasonalNaive | ForecasterKind::HoltWinters | ForecasterKind::Ar
        ));
    }

    #[test]
    fn reports_sorted_by_mae() {
        let s = seasonal_series(24 * 15);
        let reports = backtest_all(&s, 24 * 5, 24, 48, 24);
        assert!(reports.windows(2).all(|w| w[0].mae <= w[1].mae));
    }
}
