//! # greener-forecast
//!
//! Predictive analytics for energy-aware operation.
//!
//! Section II-C: "Models that help forecast and relate energy prices, fuel
//! mix, as well as energy expenditure to one another can provide significant
//! support in the decision-making process for optimizing energy purchases
//! and consumption." This crate provides classical, dependency-free
//! forecasters plus a rolling-origin backtesting harness:
//!
//! * [`model`] — mean, drift, seasonal-naive, simple exponential smoothing,
//!   Holt's linear trend, additive Holt-Winters, and AR(p) via least squares.
//! * [`metrics`] — MAE / RMSE / MAPE / sMAPE.
//! * [`mod@backtest`] — rolling-origin cross-validation over a series.
//! * [`linalg`] — the small dense solver backing AR(p).
//!
//! The carbon-aware scheduler consumes 24–48 h green-share forecasts;
//! experiment E11 scores every model against naive baselines and measures
//! the end-to-end value of forecast quality.

pub mod backtest;
pub mod linalg;
pub mod metrics;
pub mod model;

pub use backtest::{backtest, BacktestReport};
pub use metrics::{mae, mape, rmse, smape};
pub use model::{Forecaster, ForecasterKind};
