//! Forecasting models.
//!
//! All models implement [`Forecaster`]: fit on a history slice, then produce
//! an `h`-step-ahead point forecast. They are deliberately classical — the
//! paper asks for *decision support* ("predictive analytics and
//! instrumentation"), and for hourly grid/demand series with strong daily
//! seasonality, seasonal and smoothing methods are the right baseline class.

use crate::linalg::least_squares;
use serde::{Deserialize, Serialize};

/// A point forecaster.
pub trait Forecaster {
    /// Fit on a history (oldest first). Returns false if the history is too
    /// short for this model, in which case forecasts fall back to the last
    /// observed value.
    fn fit(&mut self, history: &[f64]) -> bool;

    /// Write a `horizon`-step forecast into `out` (cleared first). This is
    /// the hot-path entry point: callers that refresh forecasts every
    /// simulated hour reuse one buffer instead of allocating a `Vec` per
    /// refresh, and implementations perform no internal allocation.
    fn forecast_into(&self, horizon: usize, out: &mut Vec<f64>);

    /// Forecast `horizon` steps past the end of the fitted history
    /// (allocating convenience wrapper over [`Forecaster::forecast_into`]).
    fn forecast(&self, horizon: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(horizon);
        self.forecast_into(horizon, &mut out);
        out
    }

    /// Human-readable model name.
    fn name(&self) -> &'static str;
}

/// Enumerates the built-in models (for sweeps and tables).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ForecasterKind {
    /// Grand mean of the history.
    Mean,
    /// Last value plus average step (random-walk with drift).
    Drift,
    /// Repeat the last full season.
    SeasonalNaive,
    /// Simple exponential smoothing.
    Ses,
    /// Holt's linear trend.
    Holt,
    /// Additive Holt-Winters.
    HoltWinters,
    /// Autoregressive AR(p) by least squares.
    Ar,
}

impl ForecasterKind {
    /// All kinds, in table order.
    pub const ALL: [ForecasterKind; 7] = [
        ForecasterKind::Mean,
        ForecasterKind::Drift,
        ForecasterKind::SeasonalNaive,
        ForecasterKind::Ses,
        ForecasterKind::Holt,
        ForecasterKind::HoltWinters,
        ForecasterKind::Ar,
    ];

    /// Instantiate with sensible defaults for hourly series with a daily
    /// season of `period` (24 for hourly data).
    pub fn build(self, period: usize) -> Box<dyn Forecaster + Send> {
        match self {
            ForecasterKind::Mean => Box::new(MeanModel::default()),
            ForecasterKind::Drift => Box::new(Drift::default()),
            ForecasterKind::SeasonalNaive => Box::new(SeasonalNaive::new(period)),
            ForecasterKind::Ses => Box::new(Ses::new(0.3)),
            ForecasterKind::Holt => Box::new(Holt::new(0.3, 0.05)),
            ForecasterKind::HoltWinters => Box::new(HoltWinters::new(0.25, 0.02, 0.25, period)),
            ForecasterKind::Ar => Box::new(Ar::new(period.clamp(2, 48))),
        }
    }
}

/// Fallback shared by every model: repeat the last observation.
fn fallback_into(last: Option<f64>, horizon: usize, out: &mut Vec<f64>) {
    out.clear();
    out.resize(horizon, last.unwrap_or(0.0));
}

/// Grand-mean forecaster.
#[derive(Debug, Default, Clone)]
pub struct MeanModel {
    mean: Option<f64>,
}

impl Forecaster for MeanModel {
    fn fit(&mut self, history: &[f64]) -> bool {
        if history.is_empty() {
            return false;
        }
        self.mean = Some(history.iter().sum::<f64>() / history.len() as f64);
        true
    }

    fn forecast_into(&self, horizon: usize, out: &mut Vec<f64>) {
        fallback_into(self.mean, horizon, out);
    }

    fn name(&self) -> &'static str {
        "mean"
    }
}

/// Random walk with drift.
#[derive(Debug, Default, Clone)]
pub struct Drift {
    last: Option<f64>,
    slope: f64,
}

impl Forecaster for Drift {
    fn fit(&mut self, history: &[f64]) -> bool {
        let n = history.len();
        if n == 0 {
            return false;
        }
        self.last = Some(history[n - 1]);
        self.slope = if n >= 2 {
            (history[n - 1] - history[0]) / (n - 1) as f64
        } else {
            0.0
        };
        true
    }

    fn forecast_into(&self, horizon: usize, out: &mut Vec<f64>) {
        match self.last {
            Some(last) => {
                out.clear();
                out.extend((1..=horizon).map(|h| last + self.slope * h as f64));
            }
            None => fallback_into(None, horizon, out),
        }
    }

    fn name(&self) -> &'static str {
        "drift"
    }
}

/// Repeat the last observed season.
#[derive(Debug, Clone)]
pub struct SeasonalNaive {
    period: usize,
    season: Vec<f64>,
    last: Option<f64>,
}

impl SeasonalNaive {
    /// Seasonal-naive with the given period (24 = daily on hourly data).
    pub fn new(period: usize) -> SeasonalNaive {
        assert!(period >= 1);
        SeasonalNaive {
            period,
            season: Vec::new(),
            last: None,
        }
    }
}

impl Forecaster for SeasonalNaive {
    fn fit(&mut self, history: &[f64]) -> bool {
        self.last = history.last().copied();
        if history.len() < self.period {
            // Failed refit on a reused model: drop the stale season.
            self.season.clear();
            return false;
        }
        self.season.clear();
        self.season
            .extend_from_slice(&history[history.len() - self.period..]);
        true
    }

    fn forecast_into(&self, horizon: usize, out: &mut Vec<f64>) {
        if self.season.is_empty() {
            return fallback_into(self.last, horizon, out);
        }
        out.clear();
        out.extend((0..horizon).map(|h| self.season[h % self.period]));
    }

    fn name(&self) -> &'static str {
        "seasonal-naive"
    }
}

/// Simple exponential smoothing.
#[derive(Debug, Clone)]
pub struct Ses {
    alpha: f64,
    level: Option<f64>,
}

impl Ses {
    /// SES with smoothing factor `alpha` in (0,1].
    pub fn new(alpha: f64) -> Ses {
        assert!(alpha > 0.0 && alpha <= 1.0);
        Ses { alpha, level: None }
    }
}

impl Forecaster for Ses {
    fn fit(&mut self, history: &[f64]) -> bool {
        if history.is_empty() {
            return false;
        }
        let mut level = history[0];
        for &y in &history[1..] {
            level = self.alpha * y + (1.0 - self.alpha) * level;
        }
        self.level = Some(level);
        true
    }

    fn forecast_into(&self, horizon: usize, out: &mut Vec<f64>) {
        fallback_into(self.level, horizon, out);
    }

    fn name(&self) -> &'static str {
        "ses"
    }
}

/// Holt's linear-trend method.
#[derive(Debug, Clone)]
pub struct Holt {
    alpha: f64,
    beta: f64,
    level: Option<f64>,
    trend: f64,
}

impl Holt {
    /// Holt with level/trend smoothing factors.
    pub fn new(alpha: f64, beta: f64) -> Holt {
        assert!(alpha > 0.0 && alpha <= 1.0 && beta > 0.0 && beta <= 1.0);
        Holt {
            alpha,
            beta,
            level: None,
            trend: 0.0,
        }
    }
}

impl Forecaster for Holt {
    fn fit(&mut self, history: &[f64]) -> bool {
        if history.len() < 2 {
            // Clear any previously fitted state so a failed refit falls
            // back to pure persistence (models are reused across refits).
            self.level = history.last().copied();
            self.trend = 0.0;
            return false;
        }
        let mut level = history[0];
        let mut trend = history[1] - history[0];
        for &y in &history[1..] {
            let prev_level = level;
            level = self.alpha * y + (1.0 - self.alpha) * (level + trend);
            trend = self.beta * (level - prev_level) + (1.0 - self.beta) * trend;
        }
        self.level = Some(level);
        self.trend = trend;
        true
    }

    fn forecast_into(&self, horizon: usize, out: &mut Vec<f64>) {
        match self.level {
            Some(level) => {
                out.clear();
                out.extend((1..=horizon).map(|h| level + self.trend * h as f64));
            }
            None => fallback_into(None, horizon, out),
        }
    }

    fn name(&self) -> &'static str {
        "holt"
    }
}

/// Additive Holt-Winters (level + trend + seasonal).
#[derive(Debug, Clone)]
pub struct HoltWinters {
    alpha: f64,
    beta: f64,
    gamma: f64,
    period: usize,
    level: Option<f64>,
    trend: f64,
    season: Vec<f64>,
    t_end: usize,
}

impl HoltWinters {
    /// Additive Holt-Winters with the given smoothing factors and period.
    pub fn new(alpha: f64, beta: f64, gamma: f64, period: usize) -> HoltWinters {
        assert!(period >= 2);
        HoltWinters {
            alpha,
            beta,
            gamma,
            period,
            level: None,
            trend: 0.0,
            season: Vec::new(),
            t_end: 0,
        }
    }
}

impl Forecaster for HoltWinters {
    fn fit(&mut self, history: &[f64]) -> bool {
        let m = self.period;
        if history.len() < 2 * m {
            // Clear any previously fitted state so a failed refit falls
            // back to pure persistence (models are reused across refits).
            self.level = history.last().copied();
            self.trend = 0.0;
            self.season.clear();
            return false;
        }
        // Initialize: level = mean of first season, trend from season means,
        // seasonal indices from deviations.
        let first_mean: f64 = history[..m].iter().sum::<f64>() / m as f64;
        let second_mean: f64 = history[m..2 * m].iter().sum::<f64>() / m as f64;
        let mut level = first_mean;
        let mut trend = (second_mean - first_mean) / m as f64;
        let mut season: Vec<f64> = (0..m).map(|i| history[i] - first_mean).collect();

        for (t, &y) in history.iter().enumerate().skip(m) {
            let s_idx = t % m;
            let prev_level = level;
            level = self.alpha * (y - season[s_idx]) + (1.0 - self.alpha) * (level + trend);
            trend = self.beta * (level - prev_level) + (1.0 - self.beta) * trend;
            season[s_idx] = self.gamma * (y - level) + (1.0 - self.gamma) * season[s_idx];
        }
        self.level = Some(level);
        self.trend = trend;
        self.season = season;
        self.t_end = history.len();
        true
    }

    fn forecast_into(&self, horizon: usize, out: &mut Vec<f64>) {
        match (&self.level, self.season.is_empty()) {
            (Some(level), false) => {
                out.clear();
                out.extend((1..=horizon).map(|h| {
                    let s = self.season[(self.t_end + h - 1) % self.period];
                    level + self.trend * h as f64 + s
                }));
            }
            (last, _) => fallback_into(*last, horizon, out),
        }
    }

    fn name(&self) -> &'static str {
        "holt-winters"
    }
}

/// AR(p) fit by least squares, iterated forward for multi-step forecasts.
#[derive(Debug, Clone)]
pub struct Ar {
    p: usize,
    coef: Vec<f64>,
    intercept: f64,
    tail: Vec<f64>,
}

impl Ar {
    /// AR of order `p ≥ 1`.
    pub fn new(p: usize) -> Ar {
        assert!(p >= 1);
        Ar {
            p,
            coef: Vec::new(),
            intercept: 0.0,
            tail: Vec::new(),
        }
    }
}

impl Forecaster for Ar {
    fn fit(&mut self, history: &[f64]) -> bool {
        let p = self.p;
        self.tail.clear();
        self.tail
            .extend_from_slice(&history[history.len().saturating_sub(p)..]);
        // Clear fitted coefficients up front: models are refit in place
        // across a run, and a failed refit (short or degenerate history —
        // e.g. a constant series makes the normal equations singular) must
        // fall back to persistence, not forecast with stale coefficients
        // against a fresh tail.
        self.coef.clear();
        self.intercept = 0.0;
        if history.len() < 2 * p + 2 {
            return false;
        }
        let mut xs = Vec::with_capacity(history.len() - p);
        let mut ys = Vec::with_capacity(history.len() - p);
        for t in p..history.len() {
            let mut row: Vec<f64> = (1..=p).map(|k| history[t - k]).collect();
            row.push(1.0); // intercept
            xs.push(row);
            ys.push(history[t]);
        }
        match least_squares(&xs, &ys) {
            Some(beta) => {
                self.intercept = beta[p];
                self.coef.extend_from_slice(&beta[..p]);
                true
            }
            None => false,
        }
    }

    fn forecast_into(&self, horizon: usize, out: &mut Vec<f64>) {
        if self.coef.is_empty() || self.tail.is_empty() {
            return fallback_into(self.tail.last().copied(), horizon, out);
        }
        // Iterate forward using `out` itself as the growing history: lag
        // `k+1` at step `i` is either an earlier forecast (`out[i-k-1]`) or
        // one of the fitted tail values — no scratch buffer needed.
        out.clear();
        let tail = &self.tail;
        for i in 0..horizon {
            let mut y = self.intercept;
            for (k, c) in self.coef.iter().enumerate() {
                let back = k + 1;
                let v = if i >= back {
                    out[i - back]
                } else {
                    tail[tail.len() - (back - i)]
                };
                y += c * v;
            }
            out.push(y);
        }
    }

    fn name(&self) -> &'static str {
        "ar"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine_series(n: usize, period: f64) -> Vec<f64> {
        (0..n)
            .map(|i| 10.0 + 3.0 * (i as f64 / period * std::f64::consts::TAU).sin())
            .collect()
    }

    #[test]
    fn mean_model_is_mean() {
        let mut m = MeanModel::default();
        assert!(m.fit(&[1.0, 2.0, 3.0]));
        assert_eq!(m.forecast(3), vec![2.0, 2.0, 2.0]);
        assert_eq!(m.name(), "mean");
    }

    #[test]
    fn drift_extends_trend() {
        let mut d = Drift::default();
        assert!(d.fit(&[0.0, 1.0, 2.0, 3.0]));
        let f = d.forecast(2);
        assert!((f[0] - 4.0).abs() < 1e-9);
        assert!((f[1] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn seasonal_naive_repeats_season() {
        let hist = sine_series(96, 24.0);
        let mut m = SeasonalNaive::new(24);
        assert!(m.fit(&hist));
        let f = m.forecast(24);
        for (i, v) in f.iter().enumerate() {
            assert!((v - hist[72 + i]).abs() < 1e-12);
        }
        // Too-short history falls back.
        let mut short = SeasonalNaive::new(24);
        assert!(!short.fit(&[5.0]));
        assert_eq!(short.forecast(2), vec![5.0, 5.0]);
    }

    #[test]
    fn ses_converges_to_constant() {
        let mut m = Ses::new(0.5);
        assert!(m.fit(&vec![7.0; 50]));
        assert!((m.forecast(1)[0] - 7.0).abs() < 1e-9);
    }

    #[test]
    fn holt_tracks_linear_series() {
        let hist: Vec<f64> = (0..60).map(|i| 2.0 + 0.5 * i as f64).collect();
        let mut m = Holt::new(0.5, 0.3);
        assert!(m.fit(&hist));
        let f = m.forecast(4);
        for (h, v) in f.iter().enumerate() {
            let expected = 2.0 + 0.5 * (59 + h + 1) as f64;
            assert!((v - expected).abs() < 0.5, "h={h}: {v} vs {expected}");
        }
    }

    #[test]
    fn holt_winters_beats_ses_on_seasonal_data() {
        let hist = sine_series(24 * 14, 24.0);
        let (train, test) = hist.split_at(24 * 12);
        let mut hw = HoltWinters::new(0.25, 0.02, 0.25, 24);
        let mut ses = Ses::new(0.3);
        assert!(hw.fit(train));
        assert!(ses.fit(train));
        let err = |f: Vec<f64>| -> f64 {
            f.iter().zip(test).map(|(a, b)| (a - b).abs()).sum::<f64>() / test.len() as f64
        };
        let hw_err = err(hw.forecast(test.len()));
        let ses_err = err(ses.forecast(test.len()));
        assert!(
            hw_err < ses_err * 0.5,
            "HW {hw_err:.3} should beat SES {ses_err:.3} on seasonal data"
        );
    }

    #[test]
    fn ar_learns_ar1_dynamics() {
        // y_t = 0.8 y_{t-1} + 2.0 exactly.
        let mut hist = vec![1.0];
        for _ in 0..200 {
            let prev = *hist.last().unwrap();
            hist.push(0.8 * prev + 2.0);
        }
        let mut ar = Ar::new(2);
        assert!(ar.fit(&hist));
        let f = ar.forecast(5);
        let mut expected = *hist.last().unwrap();
        for v in f {
            expected = 0.8 * expected + 2.0;
            assert!((v - expected).abs() < 1e-3, "{v} vs {expected}");
        }
    }

    #[test]
    fn kinds_build_and_run() {
        let hist = sine_series(24 * 8, 24.0);
        for kind in ForecasterKind::ALL {
            let mut m = kind.build(24);
            m.fit(&hist);
            let f = m.forecast(48);
            assert_eq!(f.len(), 48);
            assert!(f.iter().all(|v| v.is_finite()), "{:?} produced NaN", kind);
        }
    }

    #[test]
    fn failed_refit_falls_back_to_persistence() {
        // Models are refit in place across a simulation run; a refit that
        // fails (short history) must not forecast with stale fitted state.
        let varying = sine_series(24 * 8, 24.0);
        for kind in ForecasterKind::ALL {
            let mut m = kind.build(24);
            assert!(m.fit(&varying));
            m.fit(&[5.0, 5.0, 5.0]); // succeeds for simple models, fails for seasonal/AR
            let f = m.forecast(4);
            assert_eq!(f, vec![5.0; 4], "{kind:?} kept stale state");
        }
    }

    #[test]
    fn short_ar_refit_clears_stale_coefficients() {
        // The driver refits one persistent model per hour; early hours have
        // histories long enough for a tail but too short for AR(24). Such a
        // refit must clear the previous run's coefficients, not combine
        // them with the fresh tail.
        let mut ar = Ar::new(24);
        assert!(ar.fit(&sine_series(24 * 8, 24.0)));
        let short = vec![5.0; 30]; // 30 < 2·24 + 2
        assert!(!ar.fit(&short));
        assert_eq!(ar.forecast(3), vec![5.0; 3]);
    }

    #[test]
    fn empty_history_safe() {
        for kind in ForecasterKind::ALL {
            let mut m = kind.build(24);
            assert!(!m.fit(&[]));
            let f = m.forecast(3);
            assert_eq!(f.len(), 3);
            assert!(f.iter().all(|v| v.is_finite()));
        }
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Every model yields finite forecasts on bounded random input.
            #[test]
            fn forecasts_finite(
                hist in prop::collection::vec(-100.0f64..100.0, 1..200),
                horizon in 1usize..50,
            ) {
                for kind in ForecasterKind::ALL {
                    let mut m = kind.build(24);
                    m.fit(&hist);
                    let f = m.forecast(horizon);
                    prop_assert_eq!(f.len(), horizon);
                    for v in f {
                        prop_assert!(v.is_finite(), "{:?} produced {v}", kind);
                    }
                }
            }
        }
    }
}
