//! Small dense linear algebra: just enough to fit AR(p) by least squares.

/// Solve `A·x = b` for square `A` (row-major) by Gaussian elimination with
/// partial pivoting. Returns `None` for singular (or near-singular) systems.
pub fn solve(a: &[Vec<f64>], b: &[f64]) -> Option<Vec<f64>> {
    let n = a.len();
    if n == 0 || b.len() != n || a.iter().any(|row| row.len() != n) {
        return None;
    }
    // Augmented matrix.
    let mut m: Vec<Vec<f64>> = a
        .iter()
        .zip(b)
        .map(|(row, &bi)| {
            let mut r = row.clone();
            r.push(bi);
            r
        })
        .collect();

    for col in 0..n {
        // Partial pivot.
        let pivot = (col..n).max_by(|&i, &j| {
            m[i][col]
                .abs()
                .partial_cmp(&m[j][col].abs())
                .expect("finite")
        })?;
        if m[pivot][col].abs() < 1e-12 {
            return None;
        }
        m.swap(col, pivot);
        // Eliminate below.
        let (pivot_rows, rest) = m.split_at_mut(col + 1);
        let prow = &pivot_rows[col];
        for rrow in rest.iter_mut() {
            let f = rrow[col] / prow[col];
            for (rv, &pv) in rrow[col..=n].iter_mut().zip(&prow[col..=n]) {
                *rv -= f * pv;
            }
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = m[row][n];
        for k in row + 1..n {
            acc -= m[row][k] * x[k];
        }
        x[row] = acc / m[row][row];
    }
    Some(x)
}

/// Ordinary least squares: solve `X'X β = X'y` for the design matrix `X`
/// (rows = observations). Returns `None` when the normal equations are
/// singular.
pub fn least_squares(x: &[Vec<f64>], y: &[f64]) -> Option<Vec<f64>> {
    let n = x.len();
    if n == 0 || y.len() != n {
        return None;
    }
    let p = x[0].len();
    let mut xtx = vec![vec![0.0; p]; p];
    let mut xty = vec![0.0; p];
    for (row, &yi) in x.iter().zip(y) {
        if row.len() != p {
            return None;
        }
        for i in 0..p {
            xty[i] += row[i] * yi;
            for j in 0..p {
                xtx[i][j] += row[i] * row[j];
            }
        }
    }
    // Ridge-stabilize very slightly: energy series can be near-collinear.
    for (i, row) in xtx.iter_mut().enumerate() {
        row[i] += 1e-9;
    }
    solve(&xtx, &xty)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let a = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let x = solve(&a, &[3.0, -4.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] + 4.0).abs() < 1e-12);
    }

    #[test]
    fn solves_general_3x3() {
        let a = vec![
            vec![2.0, 1.0, -1.0],
            vec![-3.0, -1.0, 2.0],
            vec![-2.0, 1.0, 2.0],
        ];
        let x = solve(&a, &[8.0, -11.0, -3.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-9);
        assert!((x[1] - 3.0).abs() < 1e-9);
        assert!((x[2] + 1.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_singular() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(solve(&a, &[1.0, 2.0]).is_none());
    }

    #[test]
    fn rejects_malformed() {
        assert!(solve(&[], &[]).is_none());
        let a = vec![vec![1.0, 2.0]];
        assert!(solve(&a, &[1.0]).is_none());
    }

    #[test]
    fn least_squares_recovers_coefficients() {
        // y = 2·x1 - 3·x2 + 0.5, no noise.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..30 {
            let x1 = (i as f64 * 0.37).sin();
            let x2 = (i as f64 * 0.11).cos();
            xs.push(vec![x1, x2, 1.0]);
            ys.push(2.0 * x1 - 3.0 * x2 + 0.5);
        }
        let beta = least_squares(&xs, &ys).unwrap();
        assert!((beta[0] - 2.0).abs() < 1e-6);
        assert!((beta[1] + 3.0).abs() < 1e-6);
        assert!((beta[2] - 0.5).abs() < 1e-6);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// For random well-conditioned systems, `solve` inverts `A·x`.
            #[test]
            fn solve_roundtrip(seed_vals in prop::collection::vec(-5.0f64..5.0, 9), x in prop::collection::vec(-10.0f64..10.0, 3)) {
                let mut a: Vec<Vec<f64>> = seed_vals.chunks(3).map(|c| c.to_vec()).collect();
                // Make it diagonally dominant → invertible.
                for (i, row) in a.iter_mut().enumerate() {
                    row[i] += 20.0;
                }
                let b: Vec<f64> = (0..3)
                    .map(|i| (0..3).map(|j| a[i][j] * x[j]).sum())
                    .collect();
                let got = solve(&a, &b).expect("diagonally dominant");
                for i in 0..3 {
                    prop_assert!((got[i] - x[i]).abs() < 1e-6);
                }
            }
        }
    }
}
