//! # greener-climate
//!
//! Weather and climate substrate for the `greener` workspace.
//!
//! Section II-B of *"A Green(er) World for A.I."* argues that energy-aware
//! cluster optimization must account for weather and climate (the `ε` term of
//! Eq. 1): cooling power tracks outdoor temperature (Fig. 4), extreme weather
//! stresses previously efficient cooling, and weatherization should be
//! exercised with Dodd-Frank-style stress tests. This crate provides:
//!
//! * [`weather`] — an hourly weather generator (temperature / wind / cloud
//!   cover) with Boston-like seasonal normals, diurnal cycles and AR(1)
//!   weather noise; this is the substitute for the local weather the MIT
//!   SuperCloud experiences.
//! * [`events`] — episodic extremes: heat waves and cold snaps.
//! * [`stress`] — the stress-scenario descriptors (heat waves, uniform
//!   warming, cooling degradation, demand surges, grid shocks) consumed by
//!   the stress-test harness in `greener-core`.

pub mod events;
pub mod stress;
pub mod weather;

pub use events::{EpisodeKind, ExtremeEvent};
pub use stress::{StressKind, StressScenario};
pub use weather::{WeatherConfig, WeatherPath};
