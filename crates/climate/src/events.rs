//! Episodic weather extremes: heat waves and cold snaps.
//!
//! The paper warns that "changes in climate resulting in rising temperatures
//! and more extreme weather patterns are likely to stress cooling and
//! already strained resources". Events here add temperature anomalies on
//! top of the seasonal/diurnal baseline; the stress harness in
//! `greener-core` scales their frequency and amplitude.

use greener_simkit::calendar::{Calendar, Month};
use greener_simkit::time::SimTime;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::weather::{poisson_knuth, WeatherConfig};

/// The kind of episodic extreme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EpisodeKind {
    /// Sustained positive temperature anomaly (summer).
    HeatWave,
    /// Sustained negative temperature anomaly (winter).
    ColdSnap,
}

/// One episodic extreme event with a triangular anomaly profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExtremeEvent {
    /// Event kind.
    pub kind: EpisodeKind,
    /// First hour (simulation hour index) affected.
    pub start_hour: u64,
    /// Duration in hours.
    pub duration_hours: u64,
    /// Peak anomaly, °F (positive for heat waves, negative for cold snaps).
    pub peak_anomaly_f: f64,
}

impl ExtremeEvent {
    /// Anomaly contributed by this event at `hour` (0 outside the event).
    ///
    /// The profile is triangular: ramps linearly to the peak at the event
    /// midpoint and back down.
    pub fn anomaly_f(&self, hour: u64) -> f64 {
        if hour < self.start_hour || hour >= self.start_hour + self.duration_hours {
            return 0.0;
        }
        let pos = (hour - self.start_hour) as f64 / self.duration_hours as f64;
        let tri = 1.0 - (2.0 * pos - 1.0).abs();
        self.peak_anomaly_f * tri
    }

    /// Whether this event overlaps the inclusive hour range `[lo, hi)`.
    pub fn overlaps(&self, lo: u64, hi: u64) -> bool {
        self.start_hour < hi && self.start_hour + self.duration_hours > lo
    }

    /// Sample the episode set for a horizon: heat waves land in Jun–Aug,
    /// cold snaps in Dec–Feb, with Poisson counts per year.
    pub fn sample_episodes<R: Rng>(
        config: &WeatherConfig,
        calendar: Calendar,
        hours: usize,
        rng: &mut R,
    ) -> Vec<ExtremeEvent> {
        let mut events = Vec::new();
        let years = (hours as f64 / (365.25 * 24.0)).ceil() as usize;
        for year_idx in 0..years {
            // Heat waves.
            let n_hw = poisson_knuth(rng, config.heatwaves_per_year);
            for _ in 0..n_hw {
                if let Some(start) = sample_start_in_months(
                    calendar,
                    hours,
                    year_idx,
                    &[Month::Jun, Month::Jul, Month::Aug],
                    rng,
                ) {
                    events.push(ExtremeEvent {
                        kind: EpisodeKind::HeatWave,
                        start_hour: start,
                        duration_hours: config.heatwave_duration_days as u64 * 24,
                        peak_anomaly_f: config.heatwave_amplitude_f * rng.gen_range(0.7..1.3),
                    });
                }
            }
            // Cold snaps.
            let n_cs = poisson_knuth(rng, config.coldsnaps_per_year);
            for _ in 0..n_cs {
                if let Some(start) = sample_start_in_months(
                    calendar,
                    hours,
                    year_idx,
                    &[Month::Dec, Month::Jan, Month::Feb],
                    rng,
                ) {
                    events.push(ExtremeEvent {
                        kind: EpisodeKind::ColdSnap,
                        start_hour: start,
                        duration_hours: config.coldsnap_duration_days as u64 * 24,
                        peak_anomaly_f: -config.coldsnap_amplitude_f * rng.gen_range(0.7..1.3),
                    });
                }
            }
        }
        events.sort_by_key(|e| e.start_hour);
        events
    }
}

/// Sample a start hour uniformly within the given months of simulation-year
/// `year_idx`, returning `None` if none of those hours fit in the horizon.
fn sample_start_in_months<R: Rng>(
    calendar: Calendar,
    hours: usize,
    year_idx: usize,
    months: &[Month],
    rng: &mut R,
) -> Option<u64> {
    let year_start = (year_idx as f64 * 365.25 * 24.0) as u64;
    let year_end = ((year_idx + 1) as f64 * 365.25 * 24.0) as u64;
    let candidates: Vec<u64> = (year_start..year_end.min(hours as u64))
        .step_by(24)
        .filter(|&h| {
            let m = calendar.date_at(SimTime::from_hours(h)).month;
            months.contains(&m)
        })
        .collect();
    if candidates.is_empty() {
        None
    } else {
        Some(candidates[rng.gen_range(0..candidates.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greener_simkit::calendar::CalDate;
    use greener_simkit::rng::RngHub;

    fn cal() -> Calendar {
        Calendar::new(CalDate::new(2020, 1, 1))
    }

    #[test]
    fn anomaly_profile_is_triangular() {
        let e = ExtremeEvent {
            kind: EpisodeKind::HeatWave,
            start_hour: 100,
            duration_hours: 96,
            peak_anomaly_f: 10.0,
        };
        assert_eq!(e.anomaly_f(99), 0.0);
        assert_eq!(e.anomaly_f(196), 0.0);
        let mid = e.anomaly_f(100 + 48);
        assert!(mid > 9.5, "midpoint anomaly {mid}");
        // Symmetric-ish ramp.
        assert!(e.anomaly_f(100 + 24) > e.anomaly_f(100 + 4));
        assert!(e.anomaly_f(100 + 24) < mid);
    }

    #[test]
    fn cold_snap_anomaly_is_negative() {
        let e = ExtremeEvent {
            kind: EpisodeKind::ColdSnap,
            start_hour: 0,
            duration_hours: 48,
            peak_anomaly_f: -12.0,
        };
        assert!(e.anomaly_f(24) < -11.0);
    }

    #[test]
    fn heat_waves_land_in_summer() {
        let config = WeatherConfig {
            heatwaves_per_year: 5.0,
            coldsnaps_per_year: 5.0,
            ..WeatherConfig::default()
        };
        let mut rng = RngHub::new(31).stream("events");
        let events = ExtremeEvent::sample_episodes(&config, cal(), 366 * 24, &mut rng);
        assert!(!events.is_empty());
        for e in &events {
            let m = cal().date_at(SimTime::from_hours(e.start_hour)).month;
            match e.kind {
                EpisodeKind::HeatWave => {
                    assert!(
                        matches!(m, Month::Jun | Month::Jul | Month::Aug),
                        "heat wave started in {m}"
                    );
                    assert!(e.peak_anomaly_f > 0.0);
                }
                EpisodeKind::ColdSnap => {
                    assert!(
                        matches!(m, Month::Dec | Month::Jan | Month::Feb),
                        "cold snap started in {m}"
                    );
                    assert!(e.peak_anomaly_f < 0.0);
                }
            }
        }
    }

    #[test]
    fn episodes_sorted_by_start() {
        let config = WeatherConfig {
            heatwaves_per_year: 4.0,
            ..WeatherConfig::default()
        };
        let mut rng = RngHub::new(5).stream("events");
        let events = ExtremeEvent::sample_episodes(&config, cal(), 2 * 366 * 24, &mut rng);
        assert!(events
            .windows(2)
            .all(|w| w[0].start_hour <= w[1].start_hour));
    }

    #[test]
    fn overlap_detection() {
        let e = ExtremeEvent {
            kind: EpisodeKind::HeatWave,
            start_hour: 10,
            duration_hours: 5,
            peak_anomaly_f: 1.0,
        };
        assert!(e.overlaps(12, 20));
        assert!(e.overlaps(0, 11));
        assert!(!e.overlaps(15, 20));
        assert!(!e.overlaps(0, 10));
    }

    #[test]
    fn zero_rate_produces_no_events() {
        let config = WeatherConfig {
            heatwaves_per_year: 0.0,
            coldsnaps_per_year: 0.0,
            ..WeatherConfig::default()
        };
        let mut rng = RngHub::new(1).stream("events");
        let events = ExtremeEvent::sample_episodes(&config, cal(), 366 * 24, &mut rng);
        assert!(events.is_empty());
    }
}
