//! Stress-scenario descriptors.
//!
//! Section II-B proposes "a regularly conducted stress-test akin to the
//! Dodd-Frank stress tests … simulated stress scenarios that test the
//! resiliency" of datacenter/HPC operations under climate and other
//! less-traditional risks. A [`StressScenario`] is a *named bundle of
//! shocks*; the harness in `greener-core` applies each shock to the relevant
//! subsystem configuration and re-runs the scenario.
//!
//! Descriptors are plain data so every crate can consume them without
//! circular dependencies.

use serde::{Deserialize, Serialize};

/// One shock applied to a subsystem configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StressKind {
    /// Uniform warming of the weather path, °C (e.g. +2 °C, +4 °C).
    UniformWarming {
        /// Warming in degrees Celsius.
        celsius: f64,
    },
    /// Scale heat-wave frequency and amplitude.
    HeatWaveIntensification {
        /// Multiplier on expected heat waves per year.
        frequency_mult: f64,
        /// Multiplier on peak anomaly.
        amplitude_mult: f64,
    },
    /// Cooling plant degradation: achieved COP is scaled down (fouling,
    /// equipment stress outside its design envelope).
    CoolingDegradation {
        /// Multiplier (< 1) on achieved coefficient of performance.
        cop_mult: f64,
    },
    /// Wholesale energy price spike (e.g. winter gas shock).
    PriceSpike {
        /// Multiplier on locational marginal prices.
        price_mult: f64,
    },
    /// Grid carbon-intensity shock (loss of clean baseload / imports).
    CarbonIntensityShock {
        /// Multiplier on fossil share of the fuel mix.
        fossil_mult: f64,
    },
    /// Compute demand surge (e.g. deadline pile-up, viral workload).
    DemandSurge {
        /// Multiplier on the job-arrival rate.
        arrival_mult: f64,
    },
    /// Water stress: reduced cooling-water availability forces a lower
    /// evaporative-cooling fraction.
    WaterStress {
        /// Multiplier (< 1) on available cooling water.
        water_mult: f64,
    },
}

/// A named scenario bundling one or more shocks, with pass thresholds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StressScenario {
    /// Scenario identifier (e.g. `"severely-adverse-heat"`).
    pub name: String,
    /// Human-readable description.
    pub description: String,
    /// Shocks applied together.
    pub shocks: Vec<StressKind>,
    /// Maximum acceptable fraction of hours with unmet cooling or SLO
    /// violations for the scenario to "pass" (the α of Eq. 1).
    pub max_violation_fraction: f64,
}

impl StressScenario {
    /// Build a scenario.
    pub fn new(
        name: impl Into<String>,
        description: impl Into<String>,
        shocks: Vec<StressKind>,
        max_violation_fraction: f64,
    ) -> StressScenario {
        StressScenario {
            name: name.into(),
            description: description.into(),
            shocks,
            max_violation_fraction,
        }
    }

    /// The standard suite, mirroring Dodd-Frank's baseline / adverse /
    /// severely-adverse ladder plus targeted single-factor scenarios.
    pub fn standard_suite() -> Vec<StressScenario> {
        vec![
            StressScenario::new(
                "baseline",
                "No shocks; reference operating conditions.",
                vec![],
                0.01,
            ),
            StressScenario::new(
                "adverse-warming",
                "+2 °C uniform warming with mildly intensified heat waves.",
                vec![
                    StressKind::UniformWarming { celsius: 2.0 },
                    StressKind::HeatWaveIntensification {
                        frequency_mult: 1.5,
                        amplitude_mult: 1.2,
                    },
                ],
                0.02,
            ),
            StressScenario::new(
                "severely-adverse-warming",
                "+4 °C warming, doubled heat waves, degraded cooling plant.",
                vec![
                    StressKind::UniformWarming { celsius: 4.0 },
                    StressKind::HeatWaveIntensification {
                        frequency_mult: 2.0,
                        amplitude_mult: 1.5,
                    },
                    StressKind::CoolingDegradation { cop_mult: 0.8 },
                ],
                0.05,
            ),
            StressScenario::new(
                "winter-price-shock",
                "Gas-driven 3x wholesale price spike with a cold-season carbon shock.",
                vec![
                    StressKind::PriceSpike { price_mult: 3.0 },
                    StressKind::CarbonIntensityShock { fossil_mult: 1.3 },
                ],
                0.02,
            ),
            StressScenario::new(
                "deadline-pileup",
                "50% arrival surge emulating a conference deadline pile-up.",
                vec![StressKind::DemandSurge { arrival_mult: 1.5 }],
                0.05,
            ),
            StressScenario::new(
                "drought",
                "Water-stressed watershed: 40% less cooling water.",
                vec![StressKind::WaterStress { water_mult: 0.6 }],
                0.03,
            ),
            StressScenario::new(
                "compound-summer",
                "Heat wave + demand surge + price spike landing together.",
                vec![
                    StressKind::HeatWaveIntensification {
                        frequency_mult: 2.0,
                        amplitude_mult: 1.4,
                    },
                    StressKind::DemandSurge { arrival_mult: 1.3 },
                    StressKind::PriceSpike { price_mult: 2.0 },
                ],
                0.05,
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_suite_has_baseline_first() {
        let suite = StressScenario::standard_suite();
        assert!(suite.len() >= 6);
        assert_eq!(suite[0].name, "baseline");
        assert!(suite[0].shocks.is_empty());
    }

    #[test]
    fn scenario_names_unique() {
        let suite = StressScenario::standard_suite();
        let mut names: Vec<&str> = suite.iter().map(|s| s.name.as_str()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), suite.len());
    }

    #[test]
    fn thresholds_are_fractions() {
        for s in StressScenario::standard_suite() {
            assert!(
                (0.0..=1.0).contains(&s.max_violation_fraction),
                "{} threshold out of range",
                s.name
            );
        }
    }

    #[test]
    fn severely_adverse_is_stricter_than_baseline_in_shock_count() {
        let suite = StressScenario::standard_suite();
        let severe = suite
            .iter()
            .find(|s| s.name == "severely-adverse-warming")
            .unwrap();
        assert!(severe.shocks.len() >= 3);
    }

    #[test]
    fn clone_roundtrip() {
        // Serialization plumbing is exercised once a real serializer is
        // available (the vendored serde stand-in has none); until then pin
        // the plain-data contract: scenarios are Clone + PartialEq.
        let s = StressScenario::standard_suite();
        let back = s.clone();
        assert_eq!(s, back);
    }
}
