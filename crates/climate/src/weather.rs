//! Hourly weather generation.
//!
//! The generator produces a [`WeatherPath`] — hourly outdoor dry-bulb
//! temperature (°F), wind speed (m/s) and cloud-cover fraction — for an
//! arbitrary horizon anchored on a [`Calendar`].
//!
//! The defaults are calibrated to the Boston area (where the MIT SuperCloud
//! lives) so that monthly mean temperatures match the shape in Fig. 4 of the
//! paper (≈30 °F in January up to ≈74 °F in July), and so the downstream
//! grid model sees ISO-NE-like seasonality: windy winters/springs, calm
//! summers, cloudier winters.

use greener_simkit::calendar::Calendar;
use greener_simkit::rng::RngHub;
use greener_simkit::series::HourlySeries;
use greener_simkit::time::SimTime;
use rand::Rng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

use crate::events::ExtremeEvent;

/// Monthly mean temperature normals for the Boston area, °F (Jan..Dec).
pub const BOSTON_TEMP_NORMALS_F: [f64; 12] = [
    29.9, 32.3, 38.8, 48.8, 58.5, 68.0, 73.9, 72.6, 65.4, 54.7, 44.9, 35.4,
];

/// Monthly mean wind-speed normals, m/s (Jan..Dec). New England onshore wind
/// is strongest in winter/early spring and weakest in mid-summer, which is
/// what makes the ISO-NE green share *low* exactly when cooling demand is
/// high (the Fig. 2 mismatch).
pub const WIND_NORMALS_MS: [f64; 12] = [7.1, 8.3, 8.5, 8.2, 7.4, 5.6, 5.2, 5.3, 5.9, 6.7, 7.2, 6.9];

/// Monthly mean cloud-cover normals in \[0,1\] (Jan..Dec).
pub const CLOUD_NORMALS: [f64; 12] = [
    0.62, 0.60, 0.58, 0.56, 0.54, 0.48, 0.44, 0.46, 0.50, 0.54, 0.60, 0.63,
];

/// Diurnal temperature half-amplitude by month, °F.
pub const DIURNAL_AMPLITUDE_F: [f64; 12] =
    [5.0, 5.5, 6.5, 7.5, 8.0, 8.5, 8.5, 8.0, 7.5, 7.0, 5.5, 5.0];

/// Configuration of the weather generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WeatherConfig {
    /// Monthly mean temperature normals, °F (Jan..Dec).
    pub temp_normals_f: [f64; 12],
    /// Monthly mean wind speed, m/s.
    pub wind_normals_ms: [f64; 12],
    /// Monthly mean cloud cover in \[0,1\].
    pub cloud_normals: [f64; 12],
    /// Diurnal half-amplitude, °F, by month.
    pub diurnal_amplitude_f: [f64; 12],
    /// AR(1) coefficient of the hourly temperature anomaly process.
    pub temp_ar1: f64,
    /// Innovation standard deviation of the temperature anomaly, °F.
    pub temp_sigma_f: f64,
    /// AR(1) coefficient of the wind anomaly process.
    pub wind_ar1: f64,
    /// Innovation standard deviation of the wind anomaly, m/s.
    pub wind_sigma_ms: f64,
    /// AR(1) coefficient of the cloud anomaly process.
    pub cloud_ar1: f64,
    /// Innovation standard deviation of cloud anomaly.
    pub cloud_sigma: f64,
    /// Uniform warming applied to every hour, °C (climate-trend scenarios).
    pub warming_offset_c: f64,
    /// Expected number of summer heat waves per year.
    pub heatwaves_per_year: f64,
    /// Heat-wave peak anomaly, °F.
    pub heatwave_amplitude_f: f64,
    /// Heat-wave duration, days.
    pub heatwave_duration_days: u32,
    /// Expected number of winter cold snaps per year.
    pub coldsnaps_per_year: f64,
    /// Cold-snap peak anomaly, °F (positive number; applied as a drop).
    pub coldsnap_amplitude_f: f64,
    /// Cold-snap duration, days.
    pub coldsnap_duration_days: u32,
}

impl Default for WeatherConfig {
    fn default() -> Self {
        WeatherConfig {
            temp_normals_f: BOSTON_TEMP_NORMALS_F,
            wind_normals_ms: WIND_NORMALS_MS,
            cloud_normals: CLOUD_NORMALS,
            diurnal_amplitude_f: DIURNAL_AMPLITUDE_F,
            temp_ar1: 0.92,
            temp_sigma_f: 1.1,
            wind_ar1: 0.85,
            wind_sigma_ms: 0.9,
            cloud_ar1: 0.90,
            cloud_sigma: 0.06,
            warming_offset_c: 0.0,
            heatwaves_per_year: 1.5,
            heatwave_amplitude_f: 10.0,
            heatwave_duration_days: 4,
            coldsnaps_per_year: 1.0,
            coldsnap_amplitude_f: 12.0,
            coldsnap_duration_days: 3,
        }
    }
}

impl WeatherConfig {
    /// Apply a uniform warming trend in °C (used by +2 °C / +4 °C stress
    /// scenarios).
    pub fn with_warming_c(mut self, c: f64) -> Self {
        self.warming_offset_c = c;
        self
    }

    /// Scale heat-wave frequency and amplitude (climate-change stress).
    pub fn with_heatwave_scaling(mut self, freq_mult: f64, amp_mult: f64) -> Self {
        self.heatwaves_per_year *= freq_mult;
        self.heatwave_amplitude_f *= amp_mult;
        self
    }

    /// Seasonal normal temperature at a given hour (smooth interpolation of
    /// mid-month anchors) plus the diurnal cycle, before noise.
    pub fn deterministic_temp_f(&self, calendar: &Calendar, hour: u64) -> f64 {
        let t = SimTime::from_hours(hour);
        let base = interp_monthly(&self.temp_normals_f, calendar, t);
        let amp = interp_monthly(&self.diurnal_amplitude_f, calendar, t);
        let hod = calendar.hour_of_day(t) as f64;
        // Warmest around 15:00, coldest around 05:00.
        let phase = (hod - 15.0) / 24.0 * std::f64::consts::TAU;
        base + amp * phase.cos() + self.warming_offset_c * 9.0 / 5.0
    }
}

/// A generated hourly weather path.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WeatherPath {
    calendar: Calendar,
    /// Hourly outdoor dry-bulb temperature, °F.
    pub temp_f: Vec<f64>,
    /// Hourly wind speed, m/s.
    pub wind_ms: Vec<f64>,
    /// Hourly cloud-cover fraction in \[0,1\].
    pub cloud: Vec<f64>,
    /// The extreme events injected into the path.
    pub events: Vec<ExtremeEvent>,
}

impl WeatherPath {
    /// Generate `hours` of weather from the configuration and RNG hub.
    ///
    /// The path is a deterministic function of `(config, calendar, hub)`.
    /// This is the sequential reference schedule; [`Self::generate_mode`]
    /// with `parallel = true` produces the identical path concurrently.
    pub fn generate(
        config: &WeatherConfig,
        calendar: Calendar,
        hours: usize,
        hub: &RngHub,
    ) -> WeatherPath {
        Self::generate_mode(config, calendar, hours, hub, false)
    }

    /// Generate the weather path, optionally running the channel passes in
    /// parallel.
    ///
    /// The path decomposes into four channel passes, each consuming its own
    /// named RNG stream (`climate.events/temp/wind/cloud`), so they can run
    /// concurrently without changing a single draw: events + temperature on
    /// one side of the fork (temperature adds each hour's episodic anomaly,
    /// so it consumes the sampled events), wind ∥ cloud on the other. Every
    /// per-hour expression is written exactly as the sequential reference
    /// evaluates it, so `parallel = true` is bit-identical to
    /// `parallel = false` (pinned by a test below and by the driver's
    /// golden determinism test).
    pub fn generate_mode(
        config: &WeatherConfig,
        calendar: Calendar,
        hours: usize,
        hub: &RngHub,
        parallel: bool,
    ) -> WeatherPath {
        let ((temp_f, events), wind_ms, cloud) = greener_simkit::par::join3(
            parallel,
            || {
                let mut event_rng = hub.stream("climate.events");
                let events = ExtremeEvent::sample_episodes(config, calendar, hours, &mut event_rng);
                let mut temp_rng = hub.stream("climate.temp");
                let temp_noise = Normal::new(0.0, config.temp_sigma_f).expect("temp sigma");
                let mut temp_f = Vec::with_capacity(hours);
                let mut ta = 0.0f64;
                for h in 0..hours {
                    ta = config.temp_ar1 * ta + temp_noise.sample(&mut temp_rng);
                    let episodic: f64 = events.iter().map(|e| e.anomaly_f(h as u64)).sum();
                    temp_f.push(config.deterministic_temp_f(&calendar, h as u64) + ta + episodic);
                }
                (temp_f, events)
            },
            || {
                let mut wind_rng = hub.stream("climate.wind");
                let wind_noise = Normal::new(0.0, config.wind_sigma_ms).expect("wind sigma");
                let mut wind_ms = Vec::with_capacity(hours);
                let mut wa = 0.0f64;
                for h in 0..hours {
                    wa = config.wind_ar1 * wa + wind_noise.sample(&mut wind_rng);
                    let t = SimTime::from_hours(h as u64);
                    let wind_base = interp_monthly(&config.wind_normals_ms, &calendar, t);
                    wind_ms.push((wind_base + wa).max(0.0));
                }
                wind_ms
            },
            || {
                let mut cloud_rng = hub.stream("climate.cloud");
                let cloud_noise = Normal::new(0.0, config.cloud_sigma).expect("cloud sigma");
                let mut cloud = Vec::with_capacity(hours);
                let mut ca = 0.0f64;
                for h in 0..hours {
                    ca = config.cloud_ar1 * ca + cloud_noise.sample(&mut cloud_rng);
                    let t = SimTime::from_hours(h as u64);
                    let cloud_base = interp_monthly(&config.cloud_normals, &calendar, t);
                    cloud.push((cloud_base + ca).clamp(0.0, 1.0));
                }
                cloud
            },
        );
        WeatherPath {
            calendar,
            temp_f,
            wind_ms,
            cloud,
            events,
        }
    }

    /// The anchoring calendar.
    pub fn calendar(&self) -> &Calendar {
        &self.calendar
    }

    /// Number of hours in the path.
    pub fn hours(&self) -> usize {
        self.temp_f.len()
    }

    /// Temperature as an [`HourlySeries`].
    pub fn temp_series(&self) -> HourlySeries {
        HourlySeries::from_values(self.calendar, self.temp_f.clone())
    }

    /// Solar capacity factor proxy for a given hour: the product of solar
    /// elevation (day-of-year and hour-of-day dependent) and clear-sky
    /// fraction. Dimensionless in \[0,1\]; the grid model scales by installed
    /// capacity.
    pub fn solar_factor(&self, hour: usize) -> f64 {
        let t = SimTime::from_hours(hour as u64);
        let hod = self.calendar.hour_of_day(t) as f64;
        // Solar elevation proxy: positive between ~6h and ~18h, peaking at
        // noon, with seasonal amplitude (longer/stronger days in summer).
        let season = self.calendar.year_fraction(t);
        // Day length factor peaks late June (year fraction ~0.48).
        let seasonal = 0.62 + 0.38 * (std::f64::consts::TAU * (season - 0.23)).sin().max(-1.0);
        let daylight = ((hod - 12.0) / 6.5 * std::f64::consts::FRAC_PI_2).cos();
        if daylight <= 0.0 {
            return 0.0;
        }
        let clear = 1.0 - 0.75 * self.cloud[hour];
        (daylight * seasonal * clear).clamp(0.0, 1.0)
    }

    /// Wind turbine capacity factor at a given hour, from a simplified
    /// power curve: cut-in 3 m/s, rated 12 m/s, cut-out 25 m/s.
    pub fn wind_factor(&self, hour: usize) -> f64 {
        wind_capacity_factor(self.wind_ms[hour])
    }
}

/// Simplified wind-turbine power curve → capacity factor in \[0,1\].
pub fn wind_capacity_factor(wind_ms: f64) -> f64 {
    const CUT_IN: f64 = 3.0;
    const RATED: f64 = 12.0;
    const CUT_OUT: f64 = 25.0;
    if !(CUT_IN..=CUT_OUT).contains(&wind_ms) {
        0.0
    } else if wind_ms >= RATED {
        1.0
    } else {
        // Cubic region between cut-in and rated.
        let x = (wind_ms.powi(3) - CUT_IN.powi(3)) / (RATED.powi(3) - CUT_IN.powi(3));
        x.clamp(0.0, 1.0)
    }
}

/// Smoothly interpolate a 12-entry mid-month anchor table at time `t`.
pub fn interp_monthly(table: &[f64; 12], calendar: &Calendar, t: SimTime) -> f64 {
    let date = calendar.date_at(t);
    let dim = greener_simkit::calendar::days_in_month(date.year, date.month) as f64;
    // Position within the month in [0,1), measured from mid-month.
    let pos = (date.day as f64 - 0.5) / dim - 0.5;
    let m = date.month.number() as usize - 1;
    if pos >= 0.0 {
        let next = (m + 1) % 12;
        table[m] * (1.0 - pos) + table[next] * pos
    } else {
        let prev = (m + 11) % 12;
        table[m] * (1.0 + pos) + table[prev] * (-pos)
    }
}

/// Sample a Poisson count with small mean via inversion (used for
/// per-season episode counts; means are ≤ ~10 so this is exact and fast).
pub fn poisson_knuth<R: Rng>(rng: &mut R, mean: f64) -> u32 {
    if mean <= 0.0 {
        return 0;
    }
    let l = (-mean).exp();
    let mut k = 0u32;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 1_000 {
            return k; // numeric guard; unreachable for sane means
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greener_simkit::calendar::CalDate;
    use greener_simkit::series::MonthlyAgg;

    fn cal2020() -> Calendar {
        Calendar::new(CalDate::new(2020, 1, 1))
    }

    fn year_path(seed: u64) -> WeatherPath {
        WeatherPath::generate(
            &WeatherConfig::default(),
            cal2020(),
            366 * 24,
            &RngHub::new(seed),
        )
    }

    #[test]
    fn generation_is_deterministic() {
        let a = year_path(1);
        let b = year_path(1);
        assert_eq!(a.temp_f, b.temp_f);
        assert_eq!(a.wind_ms, b.wind_ms);
        let c = year_path(2);
        assert_ne!(a.temp_f, c.temp_f);
    }

    #[test]
    fn parallel_generation_is_bit_identical() {
        for seed in [1u64, 7, 20220107] {
            let hub = RngHub::new(seed);
            let cfg = WeatherConfig::default();
            let seq = WeatherPath::generate_mode(&cfg, cal2020(), 120 * 24, &hub, false);
            let par = WeatherPath::generate_mode(&cfg, cal2020(), 120 * 24, &hub, true);
            assert_eq!(seq.temp_f, par.temp_f);
            assert_eq!(seq.wind_ms, par.wind_ms);
            assert_eq!(seq.cloud, par.cloud);
            assert_eq!(seq.events, par.events);
        }
    }

    #[test]
    fn monthly_means_match_normals_shape() {
        let path = year_path(7);
        let rows = path.temp_series().monthly(MonthlyAgg::Mean);
        assert_eq!(rows.len(), 12);
        for (i, row) in rows.iter().enumerate() {
            let normal = BOSTON_TEMP_NORMALS_F[i];
            assert!(
                (row.value - normal).abs() < 6.0,
                "month {} mean {:.1} vs normal {:.1}",
                i + 1,
                row.value,
                normal
            );
        }
        // July warmer than January by a wide margin.
        assert!(rows[6].value - rows[0].value > 30.0);
    }

    #[test]
    fn diurnal_cycle_present() {
        let path = year_path(3);
        // Mid-June afternoon vs pre-dawn on the same day.
        let day = 165usize;
        let t15 = path.temp_f[day * 24 + 15];
        let t05 = path.temp_f[day * 24 + 5];
        assert!(
            t15 > t05,
            "afternoon {t15:.1}°F should exceed pre-dawn {t05:.1}°F"
        );
    }

    #[test]
    fn warming_offset_shifts_everything() {
        let base = year_path(5);
        let warm = WeatherPath::generate(
            &WeatherConfig::default().with_warming_c(2.0),
            cal2020(),
            366 * 24,
            &RngHub::new(5),
        );
        let dmean =
            greener_simkit::stats::mean(&warm.temp_f) - greener_simkit::stats::mean(&base.temp_f);
        // +2°C == +3.6°F.
        assert!((dmean - 3.6).abs() < 0.2, "mean shift {dmean:.2}");
    }

    #[test]
    fn wind_is_seasonal_and_nonnegative() {
        let path = year_path(11);
        assert!(path.wind_ms.iter().all(|&w| w >= 0.0));
        let rows =
            HourlySeries::from_values(cal2020(), path.wind_ms.clone()).monthly(MonthlyAgg::Mean);
        // Winter (Jan) windier than mid-summer (Jul).
        assert!(
            rows[0].value > rows[6].value + 1.0,
            "Jan {:.2} vs Jul {:.2}",
            rows[0].value,
            rows[6].value
        );
    }

    #[test]
    fn cloud_cover_bounded() {
        let path = year_path(13);
        assert!(path.cloud.iter().all(|&c| (0.0..=1.0).contains(&c)));
    }

    #[test]
    fn solar_factor_zero_at_night_peaks_midday() {
        let path = year_path(17);
        let day = 170usize; // mid June
        assert_eq!(path.solar_factor(day * 24 + 1), 0.0);
        let noon = path.solar_factor(day * 24 + 12);
        assert!(noon > 0.2, "noon solar factor {noon:.2}");
        // Summer noon beats winter noon on average over ten days.
        let summer: f64 = (165..175).map(|d| path.solar_factor(d * 24 + 12)).sum();
        let winter: f64 = (5..15).map(|d| path.solar_factor(d * 24 + 12)).sum();
        assert!(summer > winter);
    }

    #[test]
    fn wind_power_curve_regions() {
        assert_eq!(wind_capacity_factor(1.0), 0.0); // below cut-in
        assert_eq!(wind_capacity_factor(30.0), 0.0); // above cut-out
        assert_eq!(wind_capacity_factor(15.0), 1.0); // rated
        let mid = wind_capacity_factor(7.0);
        assert!(mid > 0.0 && mid < 1.0);
        // Monotone in the cubic region.
        assert!(wind_capacity_factor(9.0) > wind_capacity_factor(6.0));
    }

    #[test]
    fn interp_monthly_hits_midmonth_anchor() {
        let cal = cal2020();
        // Mid-January (day 16 of 31) should be ≈ the January anchor.
        let t = SimTime::from_days(15);
        let v = interp_monthly(&BOSTON_TEMP_NORMALS_F, &cal, t);
        assert!((v - BOSTON_TEMP_NORMALS_F[0]).abs() < 0.6);
    }

    #[test]
    fn poisson_mean_roughly_right() {
        let mut rng = RngHub::new(4).stream("p");
        let n = 4000;
        let total: u32 = (0..n).map(|_| poisson_knuth(&mut rng, 2.5)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 2.5).abs() < 0.15, "poisson mean {mean:.3}");
        assert_eq!(poisson_knuth(&mut rng, 0.0), 0);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn temperature_path_is_physical(seed in 0u64..500) {
                let path = WeatherPath::generate(
                    &WeatherConfig::default(),
                    cal2020(),
                    60 * 24,
                    &RngHub::new(seed),
                );
                for &t in &path.temp_f {
                    // Winter Boston hourly temps stay within a sane band.
                    prop_assert!((-40.0..=120.0).contains(&t), "temp {t}");
                }
            }

            #[test]
            fn wind_factor_bounded(w in 0.0f64..40.0) {
                let f = wind_capacity_factor(w);
                prop_assert!((0.0..=1.0).contains(&f));
            }
        }
    }
}
